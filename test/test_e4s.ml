(* Differential proof that the streaming/compact reuse-fact pipeline is
   observationally identical to the materialized one it replaced: same
   ground program (byte-for-byte), same fact counts, same digests and
   request keys, same solve answers (nodes, cost vectors, reuse sets,
   verification) — across randomized synthetic universes, buildcache
   slices (arena-sharing views), interleaved installs, and the daemon's
   journaled install path. *)

module C = Concretize.Concretizer
module F = Concretize.Facts
module D = Pkg.Database

let lp = lazy (Asp.Parser.parse Concretize.Logic_program.text)

let universe seed n =
  Pkg.Repo_synth.repo { (Pkg.Repo_synth.scaled n) with Pkg.Repo_synth.seed }

let apps_of repo =
  List.filter
    (fun p -> String.length p > 3 && String.sub p 0 3 = "app")
    (Pkg.Repo.package_names repo)

let is_family fam (r : D.record) =
  match Specs.Target.find r.D.target with
  | Some t -> String.equal t.Specs.Target.family fam
  | None -> false

let slices_of db =
  [
    ("full", db);
    ("x86_64", D.filter db ~f:(is_family "x86_64"));
    ("rhel8", D.filter db ~f:(fun r -> r.D.os = "rhel8"));
  ]

let ground_pp g = Format.asprintf "%a" Asp.Ground.pp g

(* ------------------------------------------------------------------ *)
(* Ground-program equivalence                                          *)
(* ------------------------------------------------------------------ *)

(* The streamed grounder run must produce the very same interned store and
   ground program as the materialized one: atom ids, rule multiset,
   minimize statements — checked by byte-comparing the printed ground
   program, which includes all of those. *)
let check_ground_equal ~repo ~installed roots =
  let fm = F.generate ~installed ~reuse_mode:`Materialize ~repo roots in
  let fs = F.generate ~installed ~reuse_mode:`Stream ~repo roots in
  Alcotest.(check int) "n_facts equal across modes" fm.F.n_facts fs.F.n_facts;
  let gm, sm = Asp.Grounder.ground (Lazy.force lp @ fm.F.statements) in
  let gs, ss =
    Asp.Grounder.ground ?facts_stream:fs.F.reuse_stream
      (Lazy.force lp @ fs.F.statements)
  in
  Alcotest.(check int) "ground rule count"
    sm.Asp.Grounder.ground_rules ss.Asp.Grounder.ground_rules;
  Alcotest.(check int) "possible atom count"
    sm.Asp.Grounder.possible_atoms ss.Asp.Grounder.possible_atoms;
  let pm = ground_pp gm and ps = ground_pp gs in
  if not (String.equal pm ps) then
    Alcotest.failf "ground programs differ (materialized %d bytes, streamed %d)"
      (String.length pm) (String.length ps)

let test_ground_differential () =
  List.iter
    (fun seed ->
      let repo = universe seed 60 in
      let apps = apps_of repo in
      let db = Pkg.Buildcache_gen.quick ~seed ~repo ~roots:apps 300 in
      let rng = Random.State.make [| seed; 99 |] in
      List.iter
        (fun (_, slice) ->
          let root = List.nth apps (Random.State.int rng (List.length apps)) in
          check_ground_equal ~repo ~installed:slice
            [ Specs.Spec_parser.parse root ])
        (slices_of db))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Digest stability of views                                           *)
(* ------------------------------------------------------------------ *)

(* A filter view shares the parent's arena; a copy of it is a compacted
   rebuild.  Every digest derived from the database must not be able to
   tell them apart. *)
let test_view_digests () =
  let repo = universe 4 60 in
  let apps = apps_of repo in
  let db = Pkg.Buildcache_gen.quick ~seed:4 ~repo ~roots:apps 400 in
  let roots = [ Specs.Spec_parser.parse (List.nth apps 1) ] in
  List.iter
    (fun (name, view) ->
      let compacted = D.copy view in
      Alcotest.(check bool) (name ^ ": compacted copy is not a view") false
        (D.is_view compacted);
      Alcotest.(check string) (name ^ ": fingerprint") (D.fingerprint view)
        (D.fingerprint compacted);
      Alcotest.(check string)
        (name ^ ": reuse digest")
        (F.reuse_digest ~installed:view ~repo roots)
        (F.reuse_digest ~installed:compacted ~repo roots);
      Alcotest.(check string)
        (name ^ ": request key")
        (C.request_key ~installed:view ~repo roots)
        (C.request_key ~installed:compacted ~repo roots))
    (slices_of db)

(* ------------------------------------------------------------------ *)
(* Whole-solve equivalence with interleaved installs                   *)
(* ------------------------------------------------------------------ *)

let signature = function
  | C.Concrete s ->
    let nodes =
      Specs.Spec.concrete_nodes s.C.spec
      |> List.map (fun (n : Specs.Spec.concrete_node) ->
             Specs.Spec.node_hash s.C.spec n.Specs.Spec.name)
      |> List.sort compare
    in
    Printf.sprintf "nodes=%s costs=%s reused=%s built=%s verified=%b"
      (String.concat "," nodes)
      (String.concat ","
         (List.map (fun (p, v) -> Printf.sprintf "%d:%d" p v) s.C.costs))
      (String.concat ","
         (List.sort compare (List.map (fun (p, h) -> p ^ "=" ^ h) s.C.reused)))
      (String.concat "," (List.sort compare s.C.built))
      s.C.verified
  | C.Unsatisfiable _ -> "unsat"
  | C.Interrupted _ -> "interrupted"

let solve_both ~repo ~installed roots =
  let m = C.solve ~installed ~reuse_mode:`Materialize ~repo roots in
  let s = C.solve ~installed ~reuse_mode:`Stream ~repo roots in
  (signature m, signature s, m)

let test_solve_differential () =
  let repo = universe 5 60 in
  let apps = apps_of repo in
  let db = Pkg.Buildcache_gen.quick ~seed:5 ~repo ~roots:apps 250 in
  let rng = Random.State.make [| 5; 7 |] in
  let pick () = List.nth apps (Random.State.int rng (List.length apps)) in
  (* solve, install the answer, solve something else: the second round sees
     a database extended mid-run, on both paths *)
  let rec rounds n db =
    if n > 0 then begin
      let roots = [ Specs.Spec_parser.parse (pick ()) ] in
      let sig_m, sig_s, m = solve_both ~repo ~installed:db roots in
      Alcotest.(check string) "solve equal across modes" sig_m sig_s;
      let db =
        match m with
        | C.Concrete s ->
          let db = D.copy db in
          D.add_concrete db s.C.spec;
          db
        | _ -> db
      in
      rounds (n - 1) db
    end
  in
  rounds 4 db

(* ------------------------------------------------------------------ *)
(* Daemon journal path                                                 *)
(* ------------------------------------------------------------------ *)

let uid =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%d-%d" (Unix.getpid ()) !n

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ()) ("spack-e4s-" ^ uid ())
  in
  Unix.mkdir d 0o755;
  d

(* Installs flowing through the daemon's journaled path (intent, arena-blit
   copy, substrate rebase with streamed facts, save, commit) must leave the
   substrate-backed solver in agreement with a from-scratch materialized
   solve, and recovery must reproduce the live database exactly. *)
let test_daemon_journal_differential () =
  let repo = Pkg.Repo_core.repo in
  let dir = temp_dir () in
  let cfg =
    {
      Server.State.repo;
      solver = Asp.Config.default;
      cache = Server.Cache.create ();
      db = Pkg.Database.create ();
      db_path = Some (Filename.concat dir "installed.db");
      journal =
        Some (Server.Journal.open_ (Filename.concat dir "installed.db.journal"));
      journal_max_bytes = 0;
      repl = None;
      follower = false;
      timeout = None;
      client_rate = 0.;
      client_burst = 8.;
      max_pending = 8;
      crash = None;
    }
  in
  let st = Server.State.create ~jobs:1 cfg in
  Fun.protect
    ~finally:(fun () -> Asp.Pool.shutdown st.Server.State.pool)
    (fun () ->
      let solve_spec spec =
        match C.solve_spec ~repo spec with
        | C.Concrete s -> s
        | _ -> Alcotest.failf "expected concrete for %s" spec
      in
      let check_agreement root =
        let roots = [ Specs.Spec_parser.parse root ] in
        let db = Server.State.db st in
        let via_substrate =
          C.solve ~installed:db ~substrate:st.Server.State.substrate ~repo roots
        in
        let scratch = C.solve ~installed:db ~reuse_mode:`Materialize ~repo roots in
        Alcotest.(check string)
          ("substrate+stream vs scratch materialized: " ^ root)
          (signature scratch) (signature via_substrate)
      in
      check_agreement "hdf5";
      (* two journaled installs, agreement re-checked after each: the
         substrate rebases its frozen bases over the streamed reuse facts *)
      ignore (Server.State.record_install st (solve_spec "zlib") : (string * string) list);
      check_agreement "hdf5";
      ignore (Server.State.record_install st (solve_spec "hdf5") : (string * string) list);
      check_agreement "hdf5";
      check_agreement "h5utils";
      (* recovery over what the journaled path persisted *)
      Server.State.persist st;
      let r =
        Server.State.recover
          ~db_path:(Filename.concat dir "installed.db")
          ~journal_path:(Filename.concat dir "installed.db.journal")
          ()
      in
      let live = Server.State.db st in
      Alcotest.(check string) "recovered db fingerprint equals live"
        (Pkg.Database.fingerprint live)
        (Pkg.Database.fingerprint r.Server.State.db0);
      let roots = [ Specs.Spec_parser.parse "hdf5" ] in
      Alcotest.(check string) "recovered db addresses the same request key"
        (C.request_key ~installed:live ~repo roots)
        (C.request_key ~installed:r.Server.State.db0 ~repo roots))

let () =
  Alcotest.run "e4s"
    [
      ( "differential",
        [
          Alcotest.test_case "ground program: streamed = materialized" `Quick
            test_ground_differential;
          Alcotest.test_case "digests blind to arena views" `Quick
            test_view_digests;
          Alcotest.test_case "solves equal across modes (with installs)" `Quick
            test_solve_differential;
          Alcotest.test_case "daemon journal path differential" `Quick
            test_daemon_journal_differential;
        ] );
    ]
