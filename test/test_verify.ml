(* Fuzz harness for the independent model verifier (Asp.Verify): on random
   small ground programs the verifier must agree exactly with the naive
   reference semantics — it accepts every naive stable model and rejects
   every corrupted assignment that is not one.  Also checks that the
   self-checking pipeline (Solve with config.verify on) only ever reports
   verified models. *)

module V = Asp.Verify
module N = Asp.Naive

(* --- random program generator ------------------------------------------ *)

let atom i = Printf.sprintf "a%d" i

let gen_lit st n =
  let neg = Random.State.bool st in
  (if neg then "not " else "") ^ atom (Random.State.int st n)

(* Normal rules, constraints, choices and facts over a0..a(n-1); no
   #minimize so that "stable models of the program" and "models enumerate
   reports" coincide. *)
let gen_program st =
  let n = 3 + Random.State.int st 4 in
  let b = Buffer.create 256 in
  for i = 0 to n - 1 do
    if Random.State.int st 4 = 0 then Buffer.add_string b (atom i ^ ".\n")
  done;
  let nrules = 2 + Random.State.int st 6 in
  for _ = 1 to nrules do
    let body =
      List.init (Random.State.int st 3) (fun _ -> gen_lit st n)
    in
    let body_str =
      if body = [] then "" else " :- " ^ String.concat ", " body
    in
    match Random.State.int st 5 with
    | 0 when body <> [] ->
      Buffer.add_string b
        (Printf.sprintf ":- %s.\n" (String.concat ", " body))
    | 1 ->
      Buffer.add_string b
        (Printf.sprintf "{ %s }%s.\n" (atom (Random.State.int st n)) body_str)
    | _ ->
      Buffer.add_string b
        (Printf.sprintf "%s%s.\n" (atom (Random.State.int st n)) body_str)
  done;
  Buffer.contents b

let ground_of src = fst (Asp.Grounder.ground (Asp.Parser.parse src))

let check_truth g truth =
  V.check g ~is_true:(fun id -> truth.(id)) ~costs:(N.cost_vector g truth)

(* --- the fuzz loops ----------------------------------------------------- *)

let iterations = 300

(* every naive stable model passes verification, cost vector included *)
let test_accepts_stable_models () =
  let st = Random.State.make [| 0xbee5 |] in
  for i = 1 to iterations do
    let src = gen_program st in
    let g = ground_of src in
    let _, models = N.stable_models_ground g in
    List.iter
      (fun truth ->
        match check_truth g truth with
        | Ok () -> ()
        | Error vs ->
          Alcotest.failf "iteration %d: stable model rejected:\n%s\n%s" i src
            (String.concat "\n" (V.describe_all g vs)))
      models
  done

(* flipping one candidate atom of a stable model either lands on another
   stable model or must be rejected *)
let test_rejects_corrupted_models () =
  let st = Random.State.make [| 0xfeed |] in
  for i = 1 to iterations do
    let src = gen_program st in
    let g = ground_of src in
    let ids, models = N.stable_models_ground g in
    if ids <> [||] then
      List.iter
        (fun truth ->
          let flipped = Array.copy truth in
          let v = ids.(Random.State.int st (Array.length ids)) in
          flipped.(v) <- not flipped.(v);
          let is_stable = List.exists (fun m -> m = flipped) models in
          match check_truth g flipped with
          | Ok () when not is_stable ->
            Alcotest.failf
              "iteration %d: corrupted model accepted (flipped %s):\n%s" i
              (Format.asprintf "%a" Asp.Gatom.pp
                 (Asp.Gatom.Store.atom g.Asp.Ground.store v))
              src
          | Error _ when is_stable ->
            Alcotest.failf
              "iteration %d: flip landed on a stable model yet was rejected:\n%s"
              i src
          | _ -> ())
        models
  done

(* the full self-checking pipeline: SAT iff the naive semantics has a model,
   every reported model is verified, and enumeration agrees on the count *)
let test_solve_agrees_and_verifies () =
  let st = Random.State.make [| 0xcafe |] in
  for i = 1 to iterations do
    let src = gen_program st in
    let g = ground_of src in
    let _, models = N.stable_models_ground g in
    (match Asp.Solve.solve_text src with
    | Asp.Solve.Sat o ->
      if models = [] then
        Alcotest.failf "iteration %d: solver SAT, naive UNSAT:\n%s" i src;
      Alcotest.(check bool)
        (Printf.sprintf "iteration %d: model is verified" i)
        true o.Asp.Solve.verified
    | Asp.Solve.Unsat _ ->
      if models <> [] then
        Alcotest.failf "iteration %d: solver UNSAT, naive SAT:\n%s" i src
    | Asp.Solve.Interrupted _ ->
      Alcotest.failf "iteration %d: unlimited solve interrupted" i);
    let enumerated = Asp.Solve.enumerate (Asp.Parser.parse src) in
    Alcotest.(check int)
      (Printf.sprintf "iteration %d: enumerate count" i)
      (List.length models) (List.length enumerated)
  done

(* --- deterministic violation coverage ----------------------------------- *)

let id_of (g : Asp.Ground.t) name =
  match Asp.Gatom.Store.find g.Asp.Ground.store (Asp.Gatom.make name []) with
  | Some id -> id
  | None -> Alcotest.failf "atom %s not in the ground store" name

(* a and b only justify each other once the enabling choice c is false: a
   supported model that is not stable *)
let test_detects_unfounded () =
  let g = ground_of "{ c }.\na :- b.\nb :- a.\na :- c.\n" in
  let c = id_of g "c" in
  match V.check g ~is_true:(fun id -> id <> c) with
  | Ok () -> Alcotest.fail "circular {a, b} accepted as stable"
  | Error vs ->
    Alcotest.(check bool) "unfounded reported" true
      (List.exists (function V.Unfounded _ -> true | _ -> false) vs)

let test_detects_unsupported () =
  let g = ground_of "{ c }.\na :- c.\n" in
  (* {a}: a is true but its only deriving body (c) is false *)
  let c = id_of g "c" in
  match V.check g ~is_true:(fun id -> id <> c) with
  | Ok () -> Alcotest.fail "unsupported atom accepted"
  | Error vs ->
    Alcotest.(check bool) "unsupported reported" true
      (List.exists (function V.Unsupported _ -> true | _ -> false) vs)

let test_detects_rule_violation () =
  let g = ground_of "a.\n:- a.\n" in
  match V.check g ~is_true:(fun _ -> true) with
  | Ok () -> Alcotest.fail "violated constraint accepted"
  | Error _ -> ()

let test_detects_cost_mismatch () =
  let g = ground_of "a.\n" in
  match V.check g ~is_true:(fun _ -> true) ~costs:[ (1, 42) ] with
  | Ok () -> Alcotest.fail "bogus cost vector accepted"
  | Error vs ->
    Alcotest.(check bool) "cost mismatch reported" true
      (List.exists (function V.Cost_mismatch _ -> true | _ -> false) vs)

(* optimization: the verifier re-computes the cost vector the solver claims *)
let test_verifies_optimum_costs () =
  let src =
    "{ a0 }.\n{ a1 }.\n:- not a0, not a1.\n#minimize{ 2@1,x : a0 }.\n#minimize{ 1@1,y : a1 }.\n"
  in
  match Asp.Solve.solve_text src with
  | Asp.Solve.Sat o ->
    Alcotest.(check bool) "verified" true o.Asp.Solve.verified;
    Alcotest.(check (list (pair int int))) "optimal costs" [ (1, 1) ]
      o.Asp.Solve.costs
  | _ -> Alcotest.fail "expected SAT"

let () =
  Alcotest.run "verify"
    [
      ( "fuzz",
        [
          Alcotest.test_case "accepts stable models" `Quick
            test_accepts_stable_models;
          Alcotest.test_case "rejects corrupted models" `Quick
            test_rejects_corrupted_models;
          Alcotest.test_case "solve agrees and verifies" `Quick
            test_solve_agrees_and_verifies;
        ] );
      ( "violations",
        [
          Alcotest.test_case "unfounded loop" `Quick test_detects_unfounded;
          Alcotest.test_case "unsupported atom" `Quick test_detects_unsupported;
          Alcotest.test_case "violated constraint" `Quick
            test_detects_rule_violation;
          Alcotest.test_case "cost mismatch" `Quick test_detects_cost_mismatch;
          Alcotest.test_case "optimum cost recomputation" `Quick
            test_verifies_optimum_costs;
        ] );
    ]
