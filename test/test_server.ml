(* Tests for the concretization service: JSON codec, the content-addressed
   solve cache (memory + disk), the request scheduler and the daemon
   end-to-end over a real Unix socket. *)

module C = Concretize.Concretizer
module J = Server.Json

let repo = Pkg.Repo_core.repo

(* a slow instance for the cancellation / overload window *)
let slow_repo = lazy (Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled 4000))

let uid =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%d-%d" (Unix.getpid ()) !n

let temp_dir () =
  let d = Filename.concat (Filename.get_temp_dir_name ()) ("spack-test-" ^ uid ()) in
  Unix.mkdir d 0o755;
  d

let solve spec = C.solve_spec ~repo spec

let concrete spec =
  match solve spec with
  | C.Concrete s -> s
  | _ -> Alcotest.failf "expected a concrete result for %s" spec

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let values =
    [
      J.Null;
      J.Bool true;
      J.Int (-42);
      J.Float 3.25;
      J.Str "with \"quotes\", back\\slash,\nnewline and \001 control";
      J.List [ J.Int 1; J.Str "two"; J.List []; J.Obj [] ];
      J.Obj [ ("a", J.Bool false); ("nested", J.Obj [ ("b", J.List [ J.Null ]) ]) ];
    ]
  in
  List.iter
    (fun v ->
      match J.of_string (J.to_string v) with
      | Ok v' ->
        Alcotest.(check string) "roundtrip" (J.to_string v) (J.to_string v')
      | Error m -> Alcotest.failf "reparse failed: %s" m)
    values

let test_json_errors () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected a parse error for %S" s)
    [ "{"; "[1,"; "\"unterminated"; "1 2"; "{\"a\" 1}"; "truthy"; "" ]

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let codec_roundtrip r =
  let j = Server.Codec.result_to_json r in
  match Server.Codec.result_of_json j with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok r' ->
    Alcotest.(check string) "re-encoding identical"
      (J.to_string j)
      (J.to_string (Server.Codec.result_to_json r'))

let test_codec_concrete () =
  let r = solve "hdf5" in
  codec_roundtrip r;
  match (r, Server.Codec.result_of_json (Server.Codec.result_to_json r)) with
  | C.Concrete s, Ok (C.Concrete s') ->
    Alcotest.(check (list (pair int int))) "cost vector survives" s.C.costs s'.C.costs;
    Alcotest.(check bool) "verified survives" s.C.verified s'.C.verified;
    Alcotest.(check string) "same DAG hash"
      (Specs.Spec.node_hash s.C.spec s.C.spec.Specs.Spec.root)
      (Specs.Spec.node_hash s'.C.spec s'.C.spec.Specs.Spec.root)
  | _ -> Alcotest.fail "expected concrete results"

let test_codec_unsat () =
  match solve "zlib@999.9" with
  | C.Unsatisfiable _ as r -> codec_roundtrip r
  | _ -> Alcotest.fail "expected UNSAT"

let test_codec_interrupted () =
  codec_roundtrip
    (C.Interrupted
       {
         info =
           {
             Asp.Budget.phase = Asp.Budget.Search;
             reason = Asp.Budget.Deadline;
             progress = { Asp.Budget.conflicts = 3; instances = 14; opt_steps = 1 };
           };
         phases =
           {
               C.setup_time = 0.125;
               load_time = 0.5;
               ground_time = 0.25;
               ground_base_time = 0.1;
               ground_extend_time = 0.05;
               solve_time = 1.0;
             };
         n_facts = 100;
         n_possible = 7;
       })

let test_codec_rejects_garbage () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Error _ -> ()
      | Ok j -> (
        match Server.Codec.result_of_json j with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "expected decode failure for %s" s))
    [
      "{}";
      "{\"outcome\":\"concrete\"}";
      "{\"outcome\":\"interrupted\",\"info\":{\"phase\":\"warp\",\"reason\":\"deadline\",\"conflicts\":0,\"instances\":0,\"opt_steps\":0},\"phases\":{\"setup\":0,\"load\":0,\"ground\":0,\"solve\":0},\"n_facts\":0,\"n_possible\":0}";
    ]

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_lru () =
  let r = C.Concrete (concrete "zlib") in
  let cache = Server.Cache.create ~mem_capacity:2 () in
  Server.Cache.store cache "k1" r;
  Server.Cache.store cache "k2" r;
  (* touch k1 so k2 becomes the LRU victim *)
  Alcotest.(check bool) "k1 hit" true (Server.Cache.lookup cache "k1" <> None);
  Server.Cache.store cache "k3" r;
  let s = Server.Cache.stats cache in
  Alcotest.(check int) "one eviction" 1 s.Server.Cache.evictions;
  Alcotest.(check int) "bounded" 2 s.Server.Cache.mem_entries;
  Alcotest.(check bool) "k2 was evicted" true (Server.Cache.lookup cache "k2" = None);
  Alcotest.(check bool) "k1 survived" true (Server.Cache.lookup cache "k1" <> None);
  Alcotest.(check bool) "k3 present" true (Server.Cache.lookup cache "k3" <> None);
  let s = Server.Cache.stats cache in
  Alcotest.(check int) "hits counted" 3 s.Server.Cache.hits;
  Alcotest.(check int) "misses counted" 1 s.Server.Cache.misses

let test_cache_disk () =
  let dir = temp_dir () in
  let r = C.Concrete (concrete "zlib") in
  let c1 = Server.Cache.create ~dir () in
  Server.Cache.store c1 "deadbeef" r;
  (* a fresh instance over the same directory serves the entry from disk *)
  let c2 = Server.Cache.create ~dir () in
  (match Server.Cache.lookup c2 "deadbeef" with
  | None -> Alcotest.fail "expected a disk hit"
  | Some r' ->
    Alcotest.(check string) "identical result"
      (J.to_string (Server.Codec.result_to_json r))
      (J.to_string (Server.Codec.result_to_json r')));
  let s = Server.Cache.stats c2 in
  Alcotest.(check int) "disk hit counted" 1 s.Server.Cache.disk_hits;
  (* promoted into memory: the second lookup does not re-read the file *)
  ignore (Server.Cache.lookup c2 "deadbeef");
  let s = Server.Cache.stats c2 in
  Alcotest.(check int) "promoted to memory" 1 s.Server.Cache.disk_hits;
  Alcotest.(check int) "both hits" 2 s.Server.Cache.hits

let test_cache_corruption () =
  let dir = temp_dir () in
  let r = C.Concrete (concrete "zlib") in
  let path = Filename.concat dir "k.solve" in
  let write lines =
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  let read_lines () =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let fresh () = Server.Cache.create ~dir () in
  Server.Cache.store (fresh ()) "k" r;
  let original = read_lines () in
  Alcotest.(check bool) "intact file hits" true
    (Server.Cache.lookup (fresh ()) "k" <> None);
  (* truncated: the digest footer is missing *)
  write (List.filteri (fun i _ -> i < 2) original);
  Alcotest.(check bool) "truncated file is a miss" true
    (Server.Cache.lookup (fresh ()) "k" = None);
  (* corrupt: payload byte flipped, digest no longer matches *)
  (match original with
  | [ header; key; body; footer ] ->
    let body = Bytes.of_string body in
    Bytes.set body (Bytes.length body / 2) '?';
    write [ header; key; Bytes.to_string body; footer ]
  | _ -> Alcotest.fail "unexpected cache file shape");
  Alcotest.(check bool) "corrupt file is a miss" true
    (Server.Cache.lookup (fresh ()) "k" = None);
  (* stale format version: internally consistent, still ignored *)
  (match original with
  | [ _; key; body; _ ] ->
    let header = "spack-solve-cache v0" in
    let digest = Specs.Spec.digest_strings [ header; key; body ] in
    write [ header; key; body; "digest\t" ^ digest ]
  | _ -> Alcotest.fail "unexpected cache file shape");
  Alcotest.(check bool) "stale format is a miss" true
    (Server.Cache.lookup (fresh ()) "k" = None)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let await_done sched ticket =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    match Server.Scheduler.poll sched ticket with
    | `Done r -> r
    | `Pending ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "job never finished";
      Unix.sleepf 0.005;
      go ()
  in
  go ()

let test_scheduler_single_flight () =
  Asp.Pool.with_pool ~domains:2 (fun pool ->
      let sched = Server.Scheduler.create ~pool ~max_pending:4 in
      let gate = Atomic.make false in
      let job ~cancel =
        ignore cancel;
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        42
      in
      let t1 =
        match Server.Scheduler.submit sched ~key:"k" job with
        | `Accepted t -> t
        | `Overloaded -> Alcotest.fail "unexpected shed"
      in
      let t2 =
        match Server.Scheduler.submit sched ~key:"k" job with
        | `Accepted t -> t
        | `Overloaded -> Alcotest.fail "unexpected shed"
      in
      let s = Server.Scheduler.stats sched in
      Alcotest.(check int) "one pool job" 1 s.Server.Scheduler.submitted;
      Alcotest.(check int) "second joined" 1 s.Server.Scheduler.deduped;
      Atomic.set gate true;
      (match (await_done sched t1, await_done sched t2) with
      | Ok a, Ok b ->
        Alcotest.(check int) "same result" a b;
        Alcotest.(check int) "it is 42" 42 a
      | _ -> Alcotest.fail "job failed");
      let s = Server.Scheduler.stats sched in
      Alcotest.(check int) "completed once" 1 s.Server.Scheduler.completed;
      Alcotest.(check int) "nothing pending" 0 s.Server.Scheduler.pending)

let test_scheduler_overload () =
  Asp.Pool.with_pool ~domains:1 (fun pool ->
      let sched = Server.Scheduler.create ~pool ~max_pending:1 in
      let gate = Atomic.make false in
      let job ~cancel =
        ignore cancel;
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        0
      in
      let t1 =
        match Server.Scheduler.submit sched ~key:"a" job with
        | `Accepted t -> t
        | `Overloaded -> Alcotest.fail "first job shed"
      in
      (match Server.Scheduler.submit sched ~key:"b" job with
      | `Overloaded -> ()
      | `Accepted _ -> Alcotest.fail "expected `Overloaded");
      (* joining the in-flight key adds no work, so it is never shed *)
      (match Server.Scheduler.submit sched ~key:"a" job with
      | `Accepted t -> Server.Scheduler.abandon sched t
      | `Overloaded -> Alcotest.fail "join was shed");
      let s = Server.Scheduler.stats sched in
      Alcotest.(check int) "shed counted" 1 s.Server.Scheduler.shed;
      Atomic.set gate true;
      ignore (await_done sched t1))

let test_scheduler_cancel () =
  Asp.Pool.with_pool ~domains:1 (fun pool ->
      let sched = Server.Scheduler.create ~pool ~max_pending:2 in
      let job ~cancel =
        while not (Asp.Budget.is_cancelled cancel) do
          Unix.sleepf 0.002
        done;
        7
      in
      let t =
        match Server.Scheduler.submit sched ~key:"k" job with
        | `Accepted t -> t
        | `Overloaded -> Alcotest.fail "unexpected shed"
      in
      Server.Scheduler.abandon sched t;
      let s = Server.Scheduler.stats sched in
      Alcotest.(check int) "cancellation counted" 1 s.Server.Scheduler.cancelled;
      (* the job observes the token and terminates *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec drain () =
        let s = Server.Scheduler.stats sched in
        if s.Server.Scheduler.pending = 0 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "cancelled job never unwound"
        else begin
          Unix.sleepf 0.01;
          drain ()
        end
      in
      drain ())

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

let with_daemon ?(repo = repo) ?(workers = 2) ?(jobs = 2) ?(max_pending = 8)
    ?timeout ?(client_rate = 0.) ?(client_burst = 8.) ?db_path ?journal_path f =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ()) ("spackd-" ^ uid () ^ ".sock")
  in
  let cfg =
    {
      Server.Daemon.socket_path = sock;
      repo;
      solver = Asp.Config.default;
      db = Pkg.Database.create ();
      db_path;
      journal_path;
      journal_max_bytes = 0;
      follow = None;
      repl_ack = Server.Replica.Ack_async;
      cache = Server.Cache.create ();
      workers;
      jobs;
      max_pending;
      timeout;
      client_rate;
      client_burst;
      drain_grace = 5.0;
      wedge_timeout = 10.0;
      crash = None;
    }
  in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.Daemon.serve ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let finally () =
    (match Server.Client.connect sock with
    | Ok c ->
      ignore (Server.Client.request c Server.Protocol.Shutdown);
      Server.Client.close c
    | Error _ -> ());
    Domain.join d
  in
  Fun.protect ~finally (fun () -> f sock)

let client sock =
  match Server.Client.connect sock with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect failed: %s" m

let request c req =
  match Server.Client.request c req with
  | Ok resp -> resp
  | Error m -> Alcotest.failf "request failed: %s" m

let stats_int c section field =
  match request c Server.Protocol.Stats with
  | Server.Protocol.Stats_reply j -> (
    match
      Option.bind (J.member section j) (fun s ->
          Option.bind (J.member field s) J.to_int)
    with
    | Some n -> n
    | None -> Alcotest.failf "stats field %s.%s missing" section field)
  | _ -> Alcotest.fail "expected a stats reply"

let test_daemon_cold_warm () =
  with_daemon (fun sock ->
      let c = client sock in
      let cold =
        match request c (Server.Protocol.solve "zlib") with
        | Server.Protocol.Result { cache = Server.Protocol.Miss; result } -> result
        | Server.Protocol.Result { cache = Server.Protocol.Hit; _ } ->
          Alcotest.fail "cold solve reported a hit"
        | _ -> Alcotest.fail "unexpected reply"
      in
      let warm =
        match request c (Server.Protocol.solve "zlib") with
        | Server.Protocol.Result { cache = Server.Protocol.Hit; result } -> result
        | Server.Protocol.Result { cache = Server.Protocol.Miss; _ } ->
          Alcotest.fail "warm solve missed the cache"
        | _ -> Alcotest.fail "unexpected reply"
      in
      (match (cold, warm) with
      | C.Concrete a, C.Concrete b ->
        Alcotest.(check (list (pair int int))) "identical cost vector" a.C.costs
          b.C.costs;
        Alcotest.(check bool) "cold verified" true a.C.verified;
        Alcotest.(check bool) "warm verified intact" true b.C.verified;
        Alcotest.(check string) "same DAG"
          (Specs.Spec.node_hash a.C.spec a.C.spec.Specs.Spec.root)
          (Specs.Spec.node_hash b.C.spec b.C.spec.Specs.Spec.root)
      | _ -> Alcotest.fail "expected concrete results");
      Alcotest.(check bool) "stats count the hit" true (stats_int c "cache" "hits" >= 1);
      Alcotest.(check int) "one solve ran" 1 (stats_int c "scheduler" "submitted");
      Server.Client.close c)

let test_daemon_solve_many_single_flight () =
  with_daemon (fun sock ->
      let c = client sock in
      (match
         request c (Server.Protocol.solve_many [ "libiconv"; "libiconv"; "libiconv" ])
       with
      | Server.Protocol.Results entries ->
        Alcotest.(check int) "one result per input" 3 (List.length entries);
        let costs = function
          | _, C.Concrete s -> s.C.costs
          | _ -> Alcotest.fail "expected concrete"
        in
        List.iter
          (fun e ->
            Alcotest.(check (list (pair int int)))
              "identical fan-out" (costs (List.hd entries)) (costs e))
          entries
      | _ -> Alcotest.fail "unexpected reply");
      (* the duplicates joined the first request in flight *)
      Alcotest.(check int) "one solve ran" 1 (stats_int c "scheduler" "submitted");
      Alcotest.(check int) "two joined" 2 (stats_int c "scheduler" "deduped");
      Server.Client.close c)

let test_daemon_overload () =
  with_daemon ~jobs:1 ~max_pending:1 (fun sock ->
      let c = client sock in
      (* two distinct solves in one batch against a capacity of one: the
         second is shed, and the whole request reports Overloaded *)
      (match request c (Server.Protocol.solve_many [ "zlib"; "libiconv" ]) with
      | Server.Protocol.Error { kind = Server.Protocol.Overloaded; _ } -> ()
      | _ -> Alcotest.fail "expected a typed Overloaded reply");
      Alcotest.(check int) "shed counted" 1 (stats_int c "scheduler" "shed");
      (* the daemon keeps answering: the shed batch abandoned its first
         slot, so capacity frees again once the solver unwinds *)
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec retry () =
        match request c (Server.Protocol.solve "zlib") with
        | Server.Protocol.Result _ -> ()
        | Server.Protocol.Error { kind = Server.Protocol.Overloaded; _ } ->
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "server never recovered from overload"
          else begin
            Unix.sleepf 0.05;
            retry ()
          end
        | _ -> Alcotest.fail "unexpected reply"
      in
      retry ();
      Server.Client.close c)

let test_daemon_disconnect_cancels () =
  with_daemon ~repo:(Lazy.force slow_repo) ~jobs:1 (fun sock ->
      (* fire a slow solve and hang up without reading the reply *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let line =
        J.to_string
          (Server.Protocol.request_to_json (Server.Protocol.solve "app-000"))
        ^ "\n"
      in
      ignore (Unix.write_substring fd line 0 (String.length line));
      Unix.sleepf 0.1;
      Unix.close fd;
      let c = client sock in
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec wait () =
        if stats_int c "scheduler" "cancelled" >= 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "disconnect did not cancel the solve"
        else begin
          Unix.sleepf 0.05;
          wait ()
        end
      in
      wait ();
      Server.Client.close c)

let test_daemon_install_invalidates () =
  with_daemon (fun sock ->
      let c = client sock in
      (match request c (Server.Protocol.solve "zlib") with
      | Server.Protocol.Result { cache = Server.Protocol.Miss; _ } -> ()
      | _ -> Alcotest.fail "unexpected first reply");
      (match request c (Server.Protocol.install "zlib") with
      | Server.Protocol.Installed { hashes; total; _ } ->
        Alcotest.(check bool) "records added" true (total >= 1);
        Alcotest.(check bool) "zlib recorded" true
          (List.exists (fun (p, _) -> p = "zlib") hashes)
      | _ -> Alcotest.fail "expected an install reply");
      (* the database fingerprint changed, so the old cache entry is no
         longer addressed — and the fresh solve reuses the installed DAG *)
      (match request c (Server.Protocol.solve "zlib") with
      | Server.Protocol.Result { cache = Server.Protocol.Miss; result = C.Concrete s }
        ->
        Alcotest.(check bool) "reuses the installed package" true (s.C.reused <> [])
      | Server.Protocol.Result { cache = Server.Protocol.Hit; _ } ->
        Alcotest.fail "stale cache entry served after install"
      | _ -> Alcotest.fail "unexpected reply");
      Alcotest.(check bool) "db grew" true (stats_int c "server" "db_size" >= 1);
      Server.Client.close c)

let test_daemon_substrate_stats () =
  with_daemon (fun sock ->
      let c = client sock in
      let solve spec =
        match request c (Server.Protocol.solve spec) with
        | Server.Protocol.Result { result = C.Concrete _; _ } -> ()
        | _ -> Alcotest.failf "solve %s failed" spec
      in
      (* two different requests over one name skeleton: the second must
         extend the first's frozen base, not rebuild it *)
      solve "hdf5";
      solve "hdf5+szip";
      Alcotest.(check int) "one base built" 1
        (stats_int c "substrate" "base_builds");
      Alcotest.(check int) "both solves extended it" 2
        (stats_int c "substrate" "extensions");
      Alcotest.(check int) "no fallbacks" 0
        (stats_int c "substrate" "fallbacks");
      (* an install reaches the substrate as a delta (rebase) or a drop,
         never as a silent wipe *)
      (match request c (Server.Protocol.install "zlib") with
      | Server.Protocol.Installed _ -> ()
      | _ -> Alcotest.fail "expected an install reply");
      Alcotest.(check bool) "install rebased or dropped bases" true
        (stats_int c "substrate" "narrowed_invalidations"
         + stats_int c "substrate" "full_invalidations"
        >= 1);
      Server.Client.close c)

let test_daemon_bad_requests () =
  with_daemon (fun sock ->
      let c = client sock in
      (match request c (Server.Protocol.solve "zlib@") with
      | Server.Protocol.Error { kind = Server.Protocol.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "expected Bad_request for a malformed spec");
      (match request c (Server.Protocol.solve "no-such-package") with
      | Server.Protocol.Error { kind = Server.Protocol.Unknown_package p; _ } ->
        Alcotest.(check string) "names the package" "no-such-package" p
      | _ -> Alcotest.fail "expected Unknown_package");
      (* the connection survives bad requests *)
      (match request c (Server.Protocol.solve "zlib") with
      | Server.Protocol.Result _ -> ()
      | _ -> Alcotest.fail "connection unusable after errors");
      Server.Client.close c)

let () =
  Alcotest.run "server"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "codec",
        [
          Alcotest.test_case "concrete" `Quick test_codec_concrete;
          Alcotest.test_case "unsatisfiable" `Quick test_codec_unsat;
          Alcotest.test_case "interrupted" `Quick test_codec_interrupted;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "disk layer" `Quick test_cache_disk;
          Alcotest.test_case "corruption" `Quick test_cache_corruption;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "single flight" `Quick test_scheduler_single_flight;
          Alcotest.test_case "overload" `Quick test_scheduler_overload;
          Alcotest.test_case "cancellation" `Quick test_scheduler_cancel;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "cold and warm solves" `Quick test_daemon_cold_warm;
          Alcotest.test_case "batch single flight" `Quick
            test_daemon_solve_many_single_flight;
          Alcotest.test_case "overload shedding" `Quick test_daemon_overload;
          Alcotest.test_case "disconnect cancels" `Quick
            test_daemon_disconnect_cancels;
          Alcotest.test_case "install invalidates" `Quick
            test_daemon_install_invalidates;
          Alcotest.test_case "substrate stats" `Quick
            test_daemon_substrate_stats;
          Alcotest.test_case "bad requests" `Quick test_daemon_bad_requests;
        ] );
    ]
