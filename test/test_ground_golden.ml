(* Grounder-equivalence goldens.

   Each fixture is ground to a propositional program which is rendered in a
   canonical, id-independent form (atoms, rules and minimize entries as
   sorted strings).  The result is compared against a committed golden file,
   so any change to the grounder — in particular the term-interning refactor —
   is proven to leave the ground program unchanged: same possible atoms, same
   fact markings, same rules, same minimize entries.

   Regenerate with:  GOLDEN_PROMOTE=/abs/path/to/test/golden dune exec test/test_ground_golden.exe *)

let repo = Pkg.Repo_core.repo

(* ------------------------------------------------------------------ *)
(* Canonical rendering                                                 *)
(* ------------------------------------------------------------------ *)

let canon (g : Asp.Ground.t) : string =
  let store = g.Asp.Ground.store in
  let atom id = Format.asprintf "%a" Asp.Gatom.pp (Asp.Gatom.Store.atom store id) in
  let atoms = ref [] in
  for id = 0 to Asp.Gatom.Store.count store - 1 do
    let tag = if Asp.Gatom.Store.is_fact store id then "fact " else "atom " in
    atoms := (tag ^ atom id) :: !atoms
  done;
  let body (b : Asp.Ground.body) =
    let pos =
      Array.to_list (Array.map atom b.Asp.Ground.pos) |> List.sort compare
    in
    let neg =
      Array.to_list (Array.map (fun id -> "not " ^ atom id) b.Asp.Ground.neg)
      |> List.sort compare
    in
    String.concat ", " (pos @ neg)
  in
  let bound = function None -> "_" | Some n -> string_of_int n in
  let rules = ref [] in
  Asp.Vec.iter
    (fun r ->
      let s =
        match r with
        | Asp.Ground.Rnormal (h, b) ->
          Printf.sprintf "rule %s :- %s" (atom h) (body b)
        | Asp.Ground.Rconstraint b -> Printf.sprintf "constraint :- %s" (body b)
        | Asp.Ground.Rchoice { lb; ub; heads; cbody } ->
          let hs = Array.to_list (Array.map atom heads) |> List.sort compare in
          Printf.sprintf "choice %s { %s } %s :- %s" (bound lb)
            (String.concat "; " hs) (bound ub) (body cbody)
      in
      rules := s :: !rules)
    g.Asp.Ground.rules;
  let mins = ref [] in
  Asp.Vec.iter
    (fun (m : Asp.Ground.min_entry) ->
      let tup =
        String.concat ","
          (List.map (Format.asprintf "%a" Asp.Term.pp) m.Asp.Ground.mtuple)
      in
      mins :=
        Printf.sprintf "min %d@%d,[%s] :- %s" m.Asp.Ground.mweight
          m.Asp.Ground.mpriority tup
          (body m.Asp.Ground.mbody)
        :: !mins)
    g.Asp.Ground.minimize;
  let lines =
    List.sort compare !atoms
    @ List.sort compare !rules
    @ List.sort compare !mins
    @ [ Printf.sprintf "inconsistent %b" g.Asp.Ground.inconsistent ]
  in
  String.concat "\n" lines ^ "\n"

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let inline_fixtures =
  [
    ( "closure",
      {|node("hdf5"). depends_on("hdf5","mpi"). depends_on("mpi","hwloc").
        node(D) :- node(P), depends_on(P, D).
        :- depends_on(P, P).|} );
    ( "choice_minimize",
      {|pkg(a). pkg(b). ver(a, 1..3). ver(b, 2).
        1 { pick(P, V) : ver(P, V) } 1 :- pkg(P).
        #minimize{ V@1,P : pick(P, V) }.|} );
    ( "negation_arith",
      {|num(1..4). even(X) :- num(X), X \ 2 = 0.
        odd(X) :- num(X), not even(X).
        big(X + 10) :- num(X), X > 2.|} );
    ( "functions",
      {|item(pair("a", 1)). item(pair("b", 2)).
        fst(N) :- item(pair(N, V)).
        wrapped(f(g(X))) :- fst(X).|} );
    ( "conditional",
      {|condition(1). condition(2).
        req(1, "x"). req(2, "x"). req(2, "y").
        have("x").
        holds(ID) :- condition(ID); have(N) : req(ID, N).|} );
  ]

let program_of_spec spec =
  Asp.Parser.parse Concretize.Logic_program.text
  @ (Concretize.Facts.generate ~repo [ Specs.Spec_parser.parse spec ])
      .Concretize.Facts.statements

let fixtures () =
  List.map (fun (n, src) -> (n, lazy (Asp.Parser.parse src))) inline_fixtures
  @ [
      ("lp_zlib", lazy (program_of_spec "zlib"));
      ("lp_hdf5", lazy (program_of_spec "hdf5"));
    ]

(* ------------------------------------------------------------------ *)
(* Golden comparison / promotion                                       *)
(* ------------------------------------------------------------------ *)

let golden_dir =
  match Sys.getenv_opt "GOLDEN_PROMOTE" with Some d -> d | None -> "golden"

let golden_path name = Filename.concat golden_dir (name ^ ".golden")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let promoting = Sys.getenv_opt "GOLDEN_PROMOTE" <> None

(* Large pipeline fixtures are stored as a digest + line count so the goldens
   stay small; inline fixtures keep their full canonical text for diffing. *)
let golden_repr s =
  if String.length s <= 65536 then s
  else
    Printf.sprintf "digest %s lines %d\n"
      (Digest.to_hex (Digest.string s))
      (List.length (String.split_on_char '\n' s))

let check_fixture name prog () =
  let g, _stats = Asp.Grounder.ground (Lazy.force prog) in
  let got = golden_repr (canon g) in
  if promoting then write_file (golden_path name) got
  else
    let want = read_file (golden_path name) in
    Alcotest.(check string) (name ^ " ground program unchanged") want got

(* ------------------------------------------------------------------ *)
(* Term interning invariants                                           *)
(* ------------------------------------------------------------------ *)

let test_intern_idempotent () =
  let mk () =
    Asp.Term.fun_ "node"
      [ Asp.Term.str "hdf5"; Asp.Term.int 42; Asp.Term.fun_ "v" [ Asp.Term.str "1.10.2" ] ]
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "intern t == intern t" true (a == b);
  Alcotest.(check bool) "str idempotent" true (Asp.Term.str "x" == Asp.Term.str "x");
  Alcotest.(check bool) "int idempotent" true (Asp.Term.int 7 == Asp.Term.int 7)

let test_equal_is_physical () =
  let terms =
    [
      Asp.Term.int 0;
      Asp.Term.int 1;
      Asp.Term.str "a";
      Asp.Term.str "b";
      Asp.Term.fun_ "f" [ Asp.Term.int 1 ];
      Asp.Term.fun_ "f" [ Asp.Term.int 2 ];
      Asp.Term.fun_ "g" [ Asp.Term.int 1 ];
      Asp.Term.fun_ "f" [ Asp.Term.int 1; Asp.Term.str "a" ];
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Format.asprintf "equal ⇔ (==) on %a/%a" Asp.Term.pp a Asp.Term.pp b)
            (a == b) (Asp.Term.equal a b))
        terms)
    terms

let test_hash_consistent () =
  (* interning returns the same object, so hashes trivially agree; also check
     hash agrees with a freshly parsed copy of the same term *)
  let a = Asp.Parser.parse_term "f(g(1), \"x\")" in
  let b = Asp.Parser.parse_term "f(g(1), \"x\")" in
  Alcotest.(check bool) "parsed twice: same object" true (Asp.Term.equal a b);
  Alcotest.(check int) "same hash" (Asp.Term.hash a) (Asp.Term.hash b);
  let c = Asp.Parser.parse_term "f(g(2), \"x\")" in
  Alcotest.(check bool) "distinct terms differ" false (Asp.Term.equal a c)

let test_compare_order () =
  (* the documented total order survives interning: ints < strs < funs *)
  let i = Asp.Term.int 3 and s = Asp.Term.str "a" in
  let f = Asp.Term.fun_ "f" [ i ] in
  Alcotest.(check bool) "int < str" true (Asp.Term.compare i s < 0);
  Alcotest.(check bool) "str < fun" true (Asp.Term.compare s f < 0);
  Alcotest.(check int) "reflexive" 0 (Asp.Term.compare f f);
  Alcotest.(check bool) "int order" true
    (Asp.Term.compare (Asp.Term.int 1) (Asp.Term.int 2) < 0)

(* ------------------------------------------------------------------ *)

let () =
  let golden_tests =
    List.map
      (fun (name, prog) ->
        Alcotest.test_case name `Quick (check_fixture name prog))
      (fixtures ())
  in
  let intern_tests =
    [
      Alcotest.test_case "intern idempotence" `Quick test_intern_idempotent;
      Alcotest.test_case "equal iff physical" `Quick test_equal_is_physical;
      Alcotest.test_case "hash consistency" `Quick test_hash_consistent;
      Alcotest.test_case "compare order" `Quick test_compare_order;
    ]
  in
  Alcotest.run "ground_golden"
    [ ("grounder equivalence", golden_tests); ("term interning", intern_tests) ]
