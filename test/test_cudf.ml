(* CUDF frontend tests: parser/printer round-trips, document semantics,
   differential solves against two independent oracles (the brute-force
   {!Cudf.Reference} enumerator and the engine-level {!Asp.Naive}
   all-subsets checker), curated UNSAT diagnoses, and the divergence of
   the paranoid and trendy criterion stacks. *)

open Cudf

let vp ?c name = { Doc.vname = name; Doc.vconstr = c }

let pkg ?(depends = []) ?(conflicts = []) ?(provides = []) ?(recommends = [])
    ?(installed = false) ?(keep = Doc.Knone) name version =
  { Doc.name; version; depends; conflicts; provides; recommends; installed; keep }

let doc ?(install = []) ?(upgrade = []) ?(remove = []) packages =
  { Doc.packages; request = { Doc.req_id = "t"; install; upgrade; remove } }

let costs_str costs =
  String.concat ","
    (List.map (fun (p, v) -> Printf.sprintf "%d@%d" v p) costs)

let state_str state =
  String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) state)

(* engine cost vectors omit levels whose minimize statements ground to
   nothing; compare against the reference with missing levels as 0 *)
let normalize ~against costs =
  List.map
    (fun (p, _) -> (p, Option.value ~default:0 (List.assoc_opt p costs)))
    against

(* ---------- parser / printer ---------- *)

let test_roundtrip_property () =
  let gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 500) in
  let t =
    QCheck.Test.make ~count:300 ~name:"print/parse roundtrip (small)" gen
      (fun seed ->
        let d = Synth.small ~seed () in
        Doc.equal d (Doc.parse (Doc.to_string d)))
  in
  QCheck.Test.check_exn t

let test_roundtrip_universe () =
  List.iter
    (fun (seed, n) ->
      let d = Synth.universe ~seed ~n () in
      Alcotest.(check bool)
        (Printf.sprintf "universe %d/%d roundtrips" seed n)
        true
        (Doc.equal d (Doc.parse (Doc.to_string d))))
    [ (0, 50); (1, 120); (7, 300) ]

let test_parse_details () =
  let text =
    "preamble: \nproperty: junk\n\n# comment\npackage: a\nversion: 2\ndepends: \
     b >= 1 | c, d != 3\nconflicts: e, a\nprovides: f = 4, g\nrecommends: \
     h\ninstalled: true\nkeep: version\nunknown-prop: ignored\n\npackage: b\n\
     version: 1\ndepends: true!\n\npackage: c\nversion: 1\ndepends: \
     false!\n\nrequest: r\ninstall: a > 1\nupgrade: b\nremove: c\n"
  in
  let d = Doc.parse text in
  Alcotest.(check int) "three stanzas" 3 (List.length d.Doc.packages);
  let a = List.find (fun p -> p.Doc.name = "a") d.Doc.packages in
  Alcotest.(check int) "cnf" 2 (List.length a.Doc.depends);
  Alcotest.(check int) "disjunction" 2 (List.length (List.hd a.Doc.depends));
  Alcotest.(check bool) "installed" true a.Doc.installed;
  Alcotest.(check bool) "keep" true (a.Doc.keep = Doc.Kversion);
  Alcotest.(check bool)
    "versioned provide" true
    (List.mem ("f", Some 4) a.Doc.provides && List.mem ("g", None) a.Doc.provides);
  let b = List.find (fun p -> p.Doc.name = "b") d.Doc.packages in
  Alcotest.(check bool) "true! is no clause" true (b.Doc.depends = []);
  let c = List.find (fun p -> p.Doc.name = "c") d.Doc.packages in
  Alcotest.(check bool) "false! is the empty clause" true (c.Doc.depends = [ [] ]);
  Alcotest.(check int) "request parsed" 1 (List.length d.Doc.request.Doc.install)

let expect_parse_error name text =
  match Doc.parse text with
  | exception Doc.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Parse_error" name

let test_parse_errors () =
  expect_parse_error "missing version" "package: a\n\nrequest: r\n";
  expect_parse_error "bad version" "package: a\nversion: x\n\nrequest: r\n";
  expect_parse_error "duplicate stanza"
    "package: a\nversion: 1\n\npackage: a\nversion: 1\n\nrequest: r\n";
  expect_parse_error "two requests" "request: r\n\nrequest: s\n";
  expect_parse_error "provides with range"
    "package: a\nversion: 1\nprovides: f >= 2\n\nrequest: r\n"

let test_satisfies () =
  let p = pkg "a" 3 ~provides:[ ("f", Some 2); ("g", None) ] in
  let checks =
    [
      (vp "a", true);
      (vp "a" ~c:(Doc.Geq, 3), true);
      (vp "a" ~c:(Doc.Gt, 3), false);
      (vp "a" ~c:(Doc.Neq, 3), false);
      (vp "b", false);
      (* versioned feature matches exactly its version *)
      (vp "f", true);
      (vp "f" ~c:(Doc.Eq, 2), true);
      (vp "f" ~c:(Doc.Geq, 3), false);
      (* unversioned feature matches any constraint *)
      (vp "g" ~c:(Doc.Eq, 99), true);
    ]
  in
  List.iter
    (fun (v, expect) ->
      Alcotest.(check bool) (Doc.vpkg_to_string v) expect (Doc.satisfies p v))
    checks

(* ---------- differential: engine vs brute-force reference ---------- *)

let check_against_reference ?(explain = false) label d stack =
  let eng = Solver.solve ~explain ~stack d in
  let oracle = Reference.best ~stack d in
  match (eng, oracle) with
  | Solver.Interrupted _, _ -> Alcotest.failf "%s: interrupted" label
  | Solver.Unsatisfiable _, None -> ()
  | Solver.Solution s, Some (ref_costs, _) ->
    Alcotest.(check bool)
      (label ^ ": engine state valid per reference")
      true
      (Reference.valid_state d s.Solver.state);
    Alcotest.(check string)
      (label ^ ": optimal cost vector")
      (costs_str ref_costs)
      (costs_str (normalize ~against:ref_costs s.Solver.costs));
    Alcotest.(check bool) (label ^ ": verified") true s.Solver.verified;
    Alcotest.(check bool) (label ^ ": optimal") true (s.Solver.quality = `Optimal)
  | Solver.Solution s, None ->
    Alcotest.failf "%s: engine found %s but reference says UNSAT" label
      (state_str s.Solver.state)
  | Solver.Unsatisfiable _, Some (ref_costs, st) ->
    Alcotest.failf "%s: engine UNSAT but reference found %s (%s)" label
      (state_str st) (costs_str ref_costs)

let test_differential_small () =
  for seed = 0 to 80 do
    let d = Synth.small ~seed () in
    List.iter
      (fun stack ->
        check_against_reference
          (Printf.sprintf "small seed=%d stack=%s" seed (Criteria.name stack))
          d stack)
      Criteria.all
  done

(* the unsat-core path must agree with the oracle too (same verdicts), so
   run a slice of the stream with --explain semantics *)
let test_differential_small_explain () =
  for seed = 0 to 15 do
    let d = Synth.small ~seed () in
    check_against_reference ~explain:true
      (Printf.sprintf "small+explain seed=%d" seed)
      d Criteria.Paranoid
  done

(* ---------- differential: whole pipeline vs Asp.Naive ---------- *)

(* Extra-tiny universes (Naive enumerates all subsets of every candidate
   atom, derived ones included), cross-checking the CUDF logic program
   itself against a third, engine-independent implementation. *)
let naive_docs =
  [
    ("upgrade column", doc ~install:[ vp "a" ] [ pkg "a" 1 ~installed:true; pkg "a" 2 ]);
    ( "conflict forces old",
      doc ~install:[ vp "a" ]
        [ pkg "a" 1; pkg "a" 2 ~conflicts:[ vp "b" ]; pkg "b" 1 ~installed:true ] );
  ]

let test_differential_naive () =
  List.iter
    (fun (label, d) ->
      List.iter
        (fun stack ->
          let enc = Encode.generate ~installed_mode:`Materialize d in
          let program =
            Asp.Parser.parse (Logic.text stack) @ enc.Encode.statements
          in
          let naive = Asp.Naive.optimal_models program in
          let eng = Solver.solve ~stack d in
          match (naive, eng) with
          | [], Solver.Unsatisfiable _ -> ()
          | (_, ncosts) :: _, Solver.Solution s ->
            Alcotest.(check string)
              (Printf.sprintf "%s/%s: naive cost vector" label
                 (Criteria.name stack))
              (costs_str (normalize ~against:s.Solver.costs ncosts))
              (costs_str s.Solver.costs)
          | [], Solver.Solution s ->
            Alcotest.failf "%s: naive UNSAT, engine %s" label
              (state_str s.Solver.state)
          | _ :: _, Solver.Unsatisfiable _ ->
            Alcotest.failf "%s: naive SAT, engine UNSAT" label
          | _, Solver.Interrupted _ -> Alcotest.failf "%s: interrupted" label)
        Criteria.all)
    naive_docs

(* ---------- curated UNSAT diagnoses ---------- *)

let reasons_of d =
  match Solver.solve ~explain:true d with
  | Solver.Unsatisfiable { reasons; _ } -> String.concat "\n" reasons
  | Solver.Solution s ->
    Alcotest.failf "expected UNSAT, got %s" (state_str s.Solver.state)
  | Solver.Interrupted _ -> Alcotest.fail "interrupted"

let contains text needle =
  let nt = String.length text and nn = String.length needle in
  let rec go i = i + nn <= nt && (String.sub text i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let assert_mentions label text needles =
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "%s: diagnosis does not mention %S:\n%s" label needle text)
    needles

let test_unsat_conflict_named () =
  (* install b, but a=1 (required by b) conflicts with b *)
  let d =
    doc ~install:[ vp "b" ]
      [ pkg "a" 1 ~conflicts:[ vp "b" ]; pkg "b" 1 ~depends:[ [ vp "a" ] ] ]
  in
  assert_mentions "conflict core" (reasons_of d)
    [ "package a=1 conflicts with b"; "b=1 depends on a"; "asks to install b" ]

let test_unsat_rival_providers_named () =
  let d =
    doc
      ~install:[ vp "p"; vp "q" ]
      [
        pkg "p" 1 ~provides:[ ("m", None) ] ~conflicts:[ vp "m" ];
        pkg "q" 1 ~provides:[ ("m", None) ] ~conflicts:[ vp "m" ];
      ]
  in
  assert_mentions "rival providers" (reasons_of d)
    [ "conflicts with m"; "asks to install p"; "asks to install q" ]

let test_unsat_heuristic_fallback () =
  (* without --explain the syntactic diagnosis catches unknown names and
     keep contradictions *)
  let d =
    doc
      ~install:[ vp "nosuch" ]
      ~remove:[ vp "a" ]
      [ pkg "a" 1 ~installed:true ~keep:Doc.Kversion ]
  in
  match Solver.solve d with
  | Solver.Unsatisfiable { reasons; _ } ->
    let text = String.concat "\n" reasons in
    assert_mentions "heuristic" text
      [ "unknown package nosuch"; "keep: version" ]
  | _ -> Alcotest.fail "expected UNSAT"

(* ---------- stack divergence and request semantics ---------- *)

(* editor 2 (newest) drags in a brand-new library: paranoid holds the
   installed world (remove/change nothing), trendy pays one new package
   to reach the all-newest frontier — provably different optima *)
let divergence_doc =
  doc ~install:[ vp "editor" ]
    [
      pkg "editor" 1 ~installed:true ~conflicts:[ vp "editor" ];
      pkg "editor" 2 ~conflicts:[ vp "editor" ] ~depends:[ [ vp "libnew" ] ];
      pkg "libnew" 1;
    ]

let solved_state label d stack =
  match Solver.solve ~stack d with
  | Solver.Solution s -> s
  | Solver.Unsatisfiable _ -> Alcotest.failf "%s: unexpectedly UNSAT" label
  | Solver.Interrupted _ -> Alcotest.failf "%s: interrupted" label

let test_stacks_diverge () =
  let p = solved_state "paranoid" divergence_doc Criteria.Paranoid in
  let t = solved_state "trendy" divergence_doc Criteria.Trendy in
  Alcotest.(check string)
    "paranoid keeps the installed editor" "editor=1"
    (state_str p.Solver.state);
  Alcotest.(check string)
    "trendy upgrades and pays a new package" "editor=2 libnew=1"
    (state_str t.Solver.state);
  Alcotest.(check string) "paranoid optimum" "0@20,0@19" (costs_str p.Solver.costs);
  Alcotest.(check string)
    "trendy optimum" "0@20,1@19"
    (costs_str (normalize ~against:[ (20, 0); (19, 0) ] t.Solver.costs))

let test_upgrade_semantics () =
  (* upgrade: exactly one version, no downgrade below the installed one *)
  let d =
    doc ~upgrade:[ vp "a" ]
      [ pkg "a" 1; pkg "a" 2 ~installed:true; pkg "a" 3 ]
  in
  let s = solved_state "upgrade" d Criteria.Paranoid in
  let versions_of_a = List.filter (fun (n, _) -> n = "a") s.Solver.state in
  Alcotest.(check bool)
    "single version, not below installed" true
    (match versions_of_a with [ (_, v) ] -> v >= 2 | _ -> false);
  (* downgrade-only universe is unsatisfiable under upgrade *)
  let d' = doc ~upgrade:[ vp "b" ] [ pkg "b" 2 ~installed:true ] in
  let d' =
    { d' with Doc.packages = pkg "b" 1 :: d'.Doc.packages }
  in
  let d' =
    {
      d' with
      Doc.packages =
        List.filter (fun p -> not (p.Doc.name = "b" && p.Doc.version = 2)) d'.Doc.packages
        @ [ { (pkg "b" 2 ~installed:true) with Doc.depends = [ [] ] } ];
    }
  in
  match Solver.solve d' with
  | Solver.Unsatisfiable _ -> ()
  | _ -> Alcotest.fail "upgrade with only a broken target must be UNSAT"

let test_keep_semantics () =
  (* keep: version pins the stanza even though trendy wants the newest *)
  let d =
    doc
      [ pkg "a" 1 ~installed:true ~keep:Doc.Kversion ~conflicts:[ vp "a" ];
        pkg "a" 2 ~conflicts:[ vp "a" ] ]
  in
  let s = solved_state "keep" d Criteria.Trendy in
  Alcotest.(check string) "pinned at 1" "a=1" (state_str s.Solver.state);
  Alcotest.(check string)
    "and it counts as outdated" "1@20"
    (costs_str (List.filter (fun (p, _) -> p = 20) s.Solver.costs))

(* ---------- encoder modes and determinism ---------- *)

let test_stream_equals_materialize () =
  let d = Synth.universe ~seed:5 ~n:400 () in
  List.iter
    (fun stack ->
      let a = solved_state "stream" d stack in
      let b =
        match Solver.solve ~stack ~installed_mode:`Materialize d with
        | Solver.Solution s -> s
        | _ -> Alcotest.fail "materialize failed"
      in
      Alcotest.(check string)
        (Criteria.name stack ^ ": same optimum either way")
        (costs_str a.Solver.costs) (costs_str b.Solver.costs);
      Alcotest.(check int)
        (Criteria.name stack ^ ": same fact count")
        a.Solver.n_facts b.Solver.n_facts)
    Criteria.all

let test_synth_deterministic () =
  let a = Synth.universe ~seed:3 ~n:200 () in
  let b = Synth.universe ~seed:3 ~n:200 () in
  Alcotest.(check bool) "same doc" true (Doc.equal a b);
  Alcotest.(check int) "exact stanza count" 200 (List.length a.Doc.packages);
  let c = Synth.universe ~seed:4 ~n:200 () in
  Alcotest.(check bool) "seed changes the universe" false (Doc.equal a c)

let test_synth_sat_by_construction () =
  List.iter
    (fun (seed, n) ->
      let d = Synth.universe ~seed ~n () in
      List.iter
        (fun stack ->
          let s =
            solved_state (Printf.sprintf "synth %d/%d" seed n) d stack
          in
          Alcotest.(check bool) "verified optimal" true
            (s.Solver.verified && s.Solver.quality = `Optimal))
        Criteria.all)
    [ (11, 150); (12, 350) ]

let () =
  Alcotest.run "cudf"
    [
      ( "doc",
        [
          Alcotest.test_case "roundtrip property" `Quick test_roundtrip_property;
          Alcotest.test_case "roundtrip universes" `Quick test_roundtrip_universe;
          Alcotest.test_case "parse details" `Quick test_parse_details;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "satisfies" `Quick test_satisfies;
        ] );
      ( "differential",
        [
          Alcotest.test_case "vs reference (81 universes)" `Slow
            test_differential_small;
          Alcotest.test_case "vs reference with unsat cores" `Slow
            test_differential_small_explain;
          Alcotest.test_case "vs Asp.Naive" `Quick test_differential_naive;
        ] );
      ( "diagnose",
        [
          Alcotest.test_case "conflict stanza named" `Quick
            test_unsat_conflict_named;
          Alcotest.test_case "rival providers named" `Quick
            test_unsat_rival_providers_named;
          Alcotest.test_case "heuristic fallback" `Quick
            test_unsat_heuristic_fallback;
        ] );
      ( "stacks",
        [
          Alcotest.test_case "paranoid vs trendy diverge" `Quick
            test_stacks_diverge;
          Alcotest.test_case "upgrade semantics" `Quick test_upgrade_semantics;
          Alcotest.test_case "keep semantics" `Quick test_keep_semantics;
        ] );
      ( "encode",
        [
          Alcotest.test_case "stream = materialize" `Slow
            test_stream_equals_materialize;
          Alcotest.test_case "synth determinism" `Quick test_synth_deterministic;
          Alcotest.test_case "synth satisfiable by construction" `Slow
            test_synth_sat_by_construction;
        ] );
    ]
