(* End-to-end tests for the concretizer: validity, completeness, optimality,
   the usability scenarios of Section V-B, and reuse (Section VI). *)

open Concretize

let repo = Pkg.Repo_core.repo

let solve ?installed ?env spec =
  Concretizer.solve_spec ?installed ?env ~repo spec

let concrete ?installed ?env spec =
  match solve ?installed ?env spec with
  | Concretizer.Concrete s -> s
  | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
  | Concretizer.Unsatisfiable _ -> Alcotest.failf "unexpectedly UNSAT: %s" spec

let unsat ?installed spec =
  match solve ?installed spec with
  | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
  | Concretizer.Unsatisfiable _ -> ()
  | Concretizer.Concrete _ -> Alcotest.failf "expected UNSAT: %s" spec

let node_of s name =
  match
    Specs.Spec.Node_map.find_opt name s.Concretizer.spec.Specs.Spec.nodes
  with
  | Some n -> n
  | None -> Alcotest.failf "package %s not in the solution" name

let has_node s name =
  Specs.Spec.Node_map.mem name s.Concretizer.spec.Specs.Spec.nodes

let version_of s name = Specs.Version.to_string (node_of s name).Specs.Spec.version
let variant_of s name var = List.assoc var (node_of s name).Specs.Spec.variants

(* ------------------------------------------------------------------ *)
(* Validity (§III-C.1)                                                 *)
(* ------------------------------------------------------------------ *)

let check_valid (s : Concretizer.success) =
  (* all nodes fully specified, all edges resolved, no virtuals *)
  List.iter
    (fun (n : Specs.Spec.concrete_node) ->
      Alcotest.(check bool) (n.Specs.Spec.name ^ " not virtual") false
        (Pkg.Repo.is_virtual repo n.Specs.Spec.name);
      let p = Pkg.Repo.find_exn repo n.Specs.Spec.name in
      (* version is one of the declared versions *)
      Alcotest.(check bool) (n.Specs.Spec.name ^ " declared version") true
        (List.exists
           (fun (d : Pkg.Package.version_decl) ->
             Specs.Version.equal d.Pkg.Package.vversion n.Specs.Spec.version)
           p.Pkg.Package.versions);
      (* every declared variant has exactly one value *)
      List.iter
        (fun (v : Pkg.Package.variant_decl) ->
          match List.assoc_opt v.Pkg.Package.var_name n.Specs.Spec.variants with
          | Some value ->
            Alcotest.(check bool)
              (Printf.sprintf "%s %s value valid" n.Specs.Spec.name v.Pkg.Package.var_name)
              true
              (List.mem value v.Pkg.Package.var_values)
          | None ->
            Alcotest.failf "%s: variant %s unassigned" n.Specs.Spec.name
              v.Pkg.Package.var_name)
        p.Pkg.Package.variants;
      (* chosen compiler supports the chosen target *)
      Alcotest.(check bool) (n.Specs.Spec.name ^ " compiler-target ok") true
        (Specs.Compiler.supports_target n.Specs.Spec.compiler
           (Specs.Target.find_exn n.Specs.Spec.target)))
    (Specs.Spec.concrete_nodes s.Concretizer.spec)

let test_validity () =
  List.iter
    (fun spec ->
      let s = concrete spec in
      check_valid s;
      (* and the independent auditor agrees *)
      Alcotest.(check (list string))
        (spec ^ " passes Validate")
        []
        (List.map
           (Format.asprintf "%a" Validate.pp_violation)
           (Validate.check ~repo s.Concretizer.spec)))
    [ "zlib"; "hdf5"; "example"; "petsc"; "cmake" ]

let test_all_dependencies_resolved () =
  let s = concrete "example" in
  (* example depends on zlib, bzip2 (default +bzip) and some MPI *)
  Alcotest.(check bool) "zlib present" true (has_node s "zlib");
  Alcotest.(check bool) "bzip2 present" true (has_node s "bzip2");
  Alcotest.(check bool) "an mpi provider present" true
    (List.exists (has_node s) (Pkg.Repo.providers repo "mpi"))

(* ------------------------------------------------------------------ *)
(* Optimality (Table II)                                               *)
(* ------------------------------------------------------------------ *)

let test_newest_version () =
  let s = concrete "hdf5" in
  Alcotest.(check string) "newest hdf5" "1.13.1" (version_of s "hdf5");
  Alcotest.(check string) "newest zlib" "1.2.12" (version_of s "zlib")

let test_preferred_provider () =
  let s = concrete "hdf5" in
  Alcotest.(check bool) "mpich is the preferred mpi" true (has_node s "mpich");
  Alcotest.(check bool) "openmpi not pulled" false (has_node s "openmpi")

let test_default_variants () =
  let s = concrete "hdf5" in
  Alcotest.(check string) "+mpi default" "true" (variant_of s "hdf5" "mpi");
  Alcotest.(check string) "~szip default" "false" (variant_of s "hdf5" "szip")

let test_best_target_and_compiler () =
  let s = concrete "zlib" in
  let n = node_of s "zlib" in
  Alcotest.(check string) "preferred compiler" "gcc@11.2.0"
    (Specs.Compiler.to_string n.Specs.Spec.compiler);
  Alcotest.(check string) "best supported target" "icelake" n.Specs.Spec.target;
  Alcotest.(check string) "preferred os" "rhel8" n.Specs.Spec.os

let test_compiler_limits_target () =
  (* the paper's gcc-vs-skylake interaction: an old compiler caps the target *)
  let s = concrete "zlib%gcc@8.5.0" in
  Alcotest.(check string) "gcc 8 caps at skylake" "skylake"
    (node_of s "zlib").Specs.Spec.target;
  let s = concrete "zlib%gcc@4.8.5" in
  Alcotest.(check string) "gcc 4.8 caps at sandybridge" "sandybridge"
    (node_of s "zlib").Specs.Spec.target

let test_no_deprecated_by_default () =
  let s = concrete "python" in
  Alcotest.(check bool) "2.7.18 is deprecated, avoid" true (version_of s "python" <> "2.7.18");
  (* but an explicit request may use it (criterion 1 is a preference) *)
  let s = concrete "python@2.7.18~ssl~tkinter~optimizations" in
  Alcotest.(check string) "explicit deprecated ok" "2.7.18" (version_of s "python")

let test_dag_consistency () =
  (* criteria 8/9/14: no mismatches in an unconstrained solve *)
  let s = concrete "hdf5" in
  let root = node_of s "hdf5" in
  List.iter
    (fun (n : Specs.Spec.concrete_node) ->
      Alcotest.(check string) (n.Specs.Spec.name ^ " same compiler")
        (Specs.Compiler.to_string root.Specs.Spec.compiler)
        (Specs.Compiler.to_string n.Specs.Spec.compiler);
      Alcotest.(check string) (n.Specs.Spec.name ^ " same target")
        root.Specs.Spec.target n.Specs.Spec.target)
    (Specs.Spec.concrete_nodes s.Concretizer.spec)

let test_flag_propagation () =
  (* compiler flags (node parameter 5 of §III-A) propagate to built deps *)
  let s = concrete {|zlib cflags="-O2 -fPIC"|} in
  Alcotest.(check (list (pair string string))) "flags on the node"
    [ ("cflags", "-O2 -fPIC") ]
    (node_of s "zlib").Specs.Spec.flags;
  let s = concrete {|example cflags="-O3"|} in
  List.iter
    (fun (n : Specs.Spec.concrete_node) ->
      Alcotest.(check (option string)) (n.Specs.Spec.name ^ " inherits cflags")
        (Some "-O3")
        (List.assoc_opt "cflags" n.Specs.Spec.flags))
    (Specs.Spec.concrete_nodes s.Concretizer.spec)

let test_constraint_propagation () =
  (* constraints flow down the DAG (mismatch minimization) *)
  let s = concrete "hdf5%gcc@8.5.0 target=haswell" in
  List.iter
    (fun (n : Specs.Spec.concrete_node) ->
      Alcotest.(check string) (n.Specs.Spec.name ^ " target") "haswell" n.Specs.Spec.target;
      Alcotest.(check string) (n.Specs.Spec.name ^ " compiler") "gcc@8.5.0"
        (Specs.Compiler.to_string n.Specs.Spec.compiler))
    (Specs.Spec.concrete_nodes s.Concretizer.spec)

(* ------------------------------------------------------------------ *)
(* Constraints / completeness (§III-C.2, §V-B)                         *)
(* ------------------------------------------------------------------ *)

let test_version_constraint () =
  let s = concrete "hdf5@1.10.2 ^zlib@1.2.8" in
  Alcotest.(check string) "hdf5 pinned" "1.10.2" (version_of s "hdf5");
  Alcotest.(check string) "zlib pinned" "1.2.8" (version_of s "zlib")

let test_conditional_version_dep () =
  (* example@1.1.0: requires zlib@1.2.8:, example@1.0.0 does not *)
  let s = concrete "example@1.0.0 ^zlib@1.2.3" in
  Alcotest.(check string) "old zlib ok for 1.0.0" "1.2.3" (version_of s "zlib");
  unsat "example@1.1.0 ^zlib@1.2.3"

let test_conflicts () =
  unsat "example%intel";
  unsat "ucx@1.11.2 target=thunderx2";
  (* mvapich2 conflicts with aarch64 *)
  unsat "mvapich2 target=thunderx2";
  (* but the virtual can still be served on aarch64 by another provider *)
  let s = concrete "hdf5 target=thunderx2" in
  Alcotest.(check bool) "some mpi provider found" true
    (List.exists (has_node s) (Pkg.Repo.providers repo "mpi"));
  Alcotest.(check bool) "not mvapich2" false (has_node s "mvapich2")

let test_conditional_dependency_completeness () =
  (* §V-B.1: hpctoolkit ^mpich — greedy fails, ASP finds variant settings
     that make mpich reachable *)
  (match Greedy.concretize_spec ~repo "hpctoolkit ^mpich" with
  | Greedy.Error e ->
    Alcotest.(check bool) "greedy hints at overconstraining" true
      (e.Greedy.hint <> None)
  | Greedy.Ok _ -> Alcotest.fail "greedy should fail on hpctoolkit ^mpich");
  let s = concrete "hpctoolkit ^mpich" in
  Alcotest.(check bool) "mpich in the DAG" true (has_node s "mpich");
  check_valid s

let test_variant_forcing_on_root () =
  (* forcing via the root's own variant *)
  let s = concrete "hpctoolkit+mpi ^mpich" in
  Alcotest.(check string) "+mpi set" "true" (variant_of s "hpctoolkit" "mpi");
  Alcotest.(check bool) "mpich used" true (has_node s "mpich")

let test_backtracking_version_choice () =
  (* §III-C.2's bzip2 anecdote, reconstructed: dependent A wants dep@1.0.7:
     (greedy picks newest 1.0.8), dependent B (reached later) requires
     exactly dep@1.0.7.  Greedy cannot undo; the ASP solver backtracks. *)
  let mini =
    Pkg.Repo.make
      [
        Pkg.Package.make "dep" [ Pkg.Package.version "1.0.8"; Pkg.Package.version "1.0.7" ];
        Pkg.Package.make "liba"
          [ Pkg.Package.version "1.0"; Pkg.Package.depends_on "dep@1.0.7:" ];
        Pkg.Package.make "libb"
          [ Pkg.Package.version "1.0"; Pkg.Package.depends_on "dep@:1.0.7" ];
        Pkg.Package.make "app"
          [
            Pkg.Package.version "1.0";
            Pkg.Package.depends_on "liba";
            Pkg.Package.depends_on "libb";
          ];
      ]
  in
  (match Greedy.concretize_spec ~repo:mini "app" with
  | Greedy.Error _ -> ()
  | Greedy.Ok _ -> Alcotest.fail "greedy should hit the 1.0.8 dead end");
  match Concretizer.solve_spec ~repo:mini "app" with
  | Concretizer.Concrete s ->
    Alcotest.(check string) "solver backtracks to 1.0.7" "1.0.7" (version_of s "dep")
  | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
  | Concretizer.Unsatisfiable _ -> Alcotest.fail "solvable instance reported UNSAT"

let test_provider_specialization () =
  (* §V-B.3: berkeleygw+openmp with openblas as lapack provider forces
     openblas+openmp *)
  let s = concrete "berkeleygw+openmp" in
  Alcotest.(check string) "openblas has openmp" "true" (variant_of s "openblas" "openmp");
  Alcotest.(check string) "fftw has openmp" "true" (variant_of s "fftw" "openmp");
  (* without openmp, openblas keeps its default *)
  let s = concrete "berkeleygw~openmp" in
  Alcotest.(check string) "openblas default" "false" (variant_of s "openblas" "openmp")

let test_multi_root_unification () =
  match Concretizer.solve ~repo
          [ Specs.Spec_parser.parse "h5utils"; Specs.Spec_parser.parse "netcdf-c" ]
  with
  | Concretizer.Concrete s ->
    (* both roots resolve against a single hdf5 node *)
    Alcotest.(check bool) "hdf5 shared" true (has_node s "hdf5")
  | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
  | Concretizer.Unsatisfiable _ -> Alcotest.fail "multi-root solve failed"

let test_unknown_package () =
  match solve "no-such-package" with
  | exception Facts.Unknown_package p -> Alcotest.(check string) "name" "no-such-package" p
  | _ -> Alcotest.fail "expected Unknown_package"

(* ------------------------------------------------------------------ *)
(* Reuse (Section VI, Figs. 4 and 6)                                   *)
(* ------------------------------------------------------------------ *)

let build_cache ?variations roots =
  let db = Pkg.Database.create () in
  ignore
    (Pkg.Buildcache_gen.populate ?variations ~repo
       ~combos:Pkg.Buildcache_gen.default_combos ~roots db
      : Pkg.Buildcache_gen.stats);
  db

let test_reuse_prefers_installed () =
  let db = build_cache [ "hdf5"; "zlib"; "cmake" ] in
  let s = concrete ~installed:db "hdf5" in
  Alcotest.(check bool) "most packages reused" true
    (List.length s.Concretizer.reused >= 3);
  Alcotest.(check int) "nothing to build" 0 (List.length s.Concretizer.built)

let test_reuse_counts_vs_hash_reuse () =
  (* Fig. 6: hash-based reuse gets 0 hits after a config change; the solver
     still reuses most of the graph *)
  let db = build_cache [ "hdf5" ] in
  (* ask for something slightly different from any cached config *)
  let s = concrete ~installed:db "hdf5+szip" in
  Alcotest.(check bool) "szip must be built" true
    (List.mem "hdf5" s.Concretizer.built || List.mem "szip" s.Concretizer.built);
  Alcotest.(check bool) "but dependencies are reused" true
    (List.length s.Concretizer.reused > 0)

let test_reuse_respects_constraints () =
  (* defaults only: every cached zlib is the newest version *)
  let db = build_cache ~variations:1 [ "zlib" ] in
  (* a constraint no cached entry satisfies forces a build *)
  let s = concrete ~installed:db "zlib@1.2.3" in
  Alcotest.(check string) "requested version" "1.2.3" (version_of s "zlib");
  Alcotest.(check bool) "built, not reused" true (List.mem "zlib" s.Concretizer.built)

let test_new_builds_use_defaults () =
  (* Section VI's cmake/openssl pathology: minimizing builds must not strip
     default variants from packages we do build *)
  let db = build_cache [ "zlib" ] in
  (* cmake is not cached: it must be built with its *default* config, even
     though building ~ncurses would mean fewer builds *)
  let s = concrete ~installed:db "cmake" in
  Alcotest.(check string) "cmake keeps +ncurses" "true" (variant_of s "cmake" "ncurses");
  Alcotest.(check bool) "cmake is built" true (List.mem "cmake" s.Concretizer.built)

let test_empty_cache_same_as_no_cache () =
  let db = Pkg.Database.create () in
  let with_empty = concrete ~installed:db "example" in
  let without = concrete "example" in
  Alcotest.(check string) "same root rendering"
    (Specs.Spec.concrete_node_to_string (Specs.Spec.concrete_root without.Concretizer.spec))
    (Specs.Spec.concrete_node_to_string (Specs.Spec.concrete_root with_empty.Concretizer.spec))

let test_greedy_hash_reuse () =
  (* Fig. 4: the old concretizer reuses only on exact hash match *)
  let db = build_cache [ "hdf5" ] in
  match Greedy.concretize_spec ~repo "hdf5" with
  | Greedy.Ok c ->
    let h = Specs.Spec.node_hash c "hdf5" in
    (* greedy's config may or may not match a cached hash exactly; with the
       default combo list it does for the default environment *)
    ignore (Pkg.Database.find db h)
  | Greedy.Error e -> Alcotest.failf "greedy failed: %s" e.Greedy.message

(* ------------------------------------------------------------------ *)
(* Fact generation, diagnostics, phases                                 *)
(* ------------------------------------------------------------------ *)

let test_fact_generation () =
  let facts = Facts.generate ~repo [ Specs.Spec_parser.parse "example" ] in
  Alcotest.(check bool) "plenty of facts" true (facts.Facts.n_facts > 300);
  Alcotest.(check bool) "closure includes deps" true
    (List.mem "zlib" facts.Facts.possible && List.mem "mpich" facts.Facts.possible);
  Alcotest.(check bool) "closure excludes unrelated" false
    (List.mem "petsc" facts.Facts.possible);
  let has_pred name =
    List.exists
      (function
        | Asp.Ast.Rule { head = Asp.Ast.Head_atom { pred; _ }; body = []; _ } -> pred = name
        | _ -> false)
      facts.Facts.statements
  in
  Alcotest.(check bool) "no optimize_for_reuse" false (has_pred "optimize_for_reuse");
  Alcotest.(check bool) "no installed_hash" false (has_pred "installed_hash");
  Alcotest.(check bool) "conflict ids recorded" true (facts.Facts.conflict_msgs <> [])

let test_fact_generation_with_reuse () =
  let db = build_cache ~variations:1 [ "zlib" ] in
  let roots = [ Specs.Spec_parser.parse "zlib" ] in
  let facts =
    Facts.generate ~installed:db ~reuse_mode:`Materialize ~repo roots
  in
  let count name =
    List.length
      (List.filter
         (function
           | Asp.Ast.Rule { head = Asp.Ast.Head_atom { pred; _ }; body = []; _ } ->
             pred = name
           | _ -> false)
         facts.Facts.statements)
  in
  Alcotest.(check bool) "optimize_for_reuse emitted" true (count "optimize_for_reuse" = 1);
  Alcotest.(check bool) "installed hashes" true (count "installed_hash" > 0);
  Alcotest.(check bool) "hash constraints" true (count "hash_constraint" > 0);
  (* the streaming default delivers the same facts via [reuse_stream]
     instead of statements, with an identical total count *)
  let streamed = Facts.generate ~installed:db ~repo roots in
  let stream =
    match streamed.Facts.reuse_stream with
    | Some s -> s
    | None -> Alcotest.fail "streaming mode produced no reuse stream"
  in
  let by_pred = Hashtbl.create 8 in
  stream (fun (ga : Asp.Gatom.t) ->
      let n =
        Option.value ~default:0 (Hashtbl.find_opt by_pred ga.Asp.Gatom.pred)
      in
      Hashtbl.replace by_pred ga.Asp.Gatom.pred (n + 1));
  let scount p = Option.value ~default:0 (Hashtbl.find_opt by_pred p) in
  Alcotest.(check int) "streamed installed_hash" (count "installed_hash")
    (scount "installed_hash");
  Alcotest.(check int) "streamed hash_constraint" (count "hash_constraint")
    (scount "hash_constraint");
  Alcotest.(check int) "streamed hash_dep" (count "hash_dep") (scount "hash_dep");
  Alcotest.(check int) "n_facts identical across modes" facts.Facts.n_facts
    streamed.Facts.n_facts

let test_phases_measured () =
  let s = concrete "hdf5" in
  let p = s.Concretizer.phases in
  Alcotest.(check bool) "ground > 0" true (p.Concretizer.ground_time > 0.0);
  Alcotest.(check bool) "solve > 0" true (p.Concretizer.solve_time > 0.0);
  Alcotest.(check bool) "total is the sum" true
    (abs_float
       (Concretizer.total p
       -. (p.Concretizer.setup_time +. p.Concretizer.load_time
          +. p.Concretizer.ground_time +. p.Concretizer.solve_time))
    < 1e-9)

let reasons_of spec =
  match solve spec with
  | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
  | Concretizer.Unsatisfiable { reasons; _ } -> reasons
  | Concretizer.Concrete _ -> Alcotest.failf "expected UNSAT: %s" spec

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_diagnostics () =
  let has reasons fragment = List.exists (fun r -> contains_substring r fragment) reasons in
  Alcotest.(check bool) "bad version explained" true
    (has (reasons_of "zlib@9.9") "no declared version");
  Alcotest.(check bool) "conflict explained" true
    (has (reasons_of "example%intel") "conflicts with");
  Alcotest.(check bool) "bad variant value explained" true
    (has (reasons_of "hdf5 api=nonsense") "admits");
  Alcotest.(check bool) "unknown variant explained" true
    (has (reasons_of "zlib+nonexistent") "no variant");
  Alcotest.(check bool) "unknown compiler explained" true
    (has (reasons_of "zlib%icc") "no compiler");
  Alcotest.(check bool) "dependency constraint explained" true
    (has (reasons_of "hdf5 ^zlib@9.9") "no declared version")

let test_logic_program_size () =
  Alcotest.(check bool) "nontrivial logic program" true (Logic_program.line_count > 120);
  Alcotest.(check bool) "parses" true (List.length (Logic_program.program ()) > 80)

let test_greedy_inherits_toolchain () =
  match Greedy.concretize_spec ~repo "hdf5%gcc@8.5.0" with
  | Greedy.Ok c ->
    List.iter
      (fun (n : Specs.Spec.concrete_node) ->
        Alcotest.(check string) (n.Specs.Spec.name ^ " compiler") "gcc@8.5.0"
          (Specs.Compiler.to_string n.Specs.Spec.compiler))
      (Specs.Spec.concrete_nodes c)
  | Greedy.Error e -> Alcotest.failf "greedy failed: %s" e.Greedy.message

let test_greedy_unknown_variant () =
  match Greedy.concretize_spec ~repo "zlib+nonexistent" with
  | Greedy.Error _ -> ()
  | Greedy.Ok _ -> Alcotest.fail "greedy accepted an unknown variant"

let test_strategies_agree_on_concretization () =
  List.iter
    (fun spec ->
      let render strategy =
        let config = Asp.Config.make ~strategy () in
        match Concretizer.solve_spec ~config ~repo spec with
        | Concretizer.Concrete s -> List.filter (fun (_, v) -> v <> 0) s.Concretizer.costs
        | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
        | Concretizer.Unsatisfiable _ -> Alcotest.failf "UNSAT: %s" spec
      in
      Alcotest.(check (list (pair int int)))
        ("bb = usc cost vector for " ^ spec)
        (render Asp.Config.Bb) (render Asp.Config.Usc))
    [ "hdf5"; "example"; "hdf5@1.10.2%gcc@8.5.0"; "berkeleygw+openmp" ]

(* ------------------------------------------------------------------ *)
(* Preferences (user configuration, the third input source)             *)
(* ------------------------------------------------------------------ *)

let test_prefs_version () =
  let prefs =
    {
      Preferences.empty with
      Preferences.packages =
        [
          ( "zlib",
            {
              Preferences.pref_version = Some (Specs.Vrange.of_string "1.2.8");
              pref_variants = [];
            } );
        ];
    }
  in
  let s =
    match Concretizer.solve_spec ~prefs ~repo "zlib" with
    | Concretizer.Concrete s -> s
    | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
    | Concretizer.Unsatisfiable _ -> Alcotest.fail "UNSAT"
  in
  Alcotest.(check string) "preferred version wins over newest" "1.2.8"
    (version_of s "zlib");
  (* a hard requirement still overrides the preference *)
  let s =
    match Concretizer.solve_spec ~prefs ~repo "zlib@1.2.12" with
    | Concretizer.Concrete s -> s
    | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
    | Concretizer.Unsatisfiable _ -> Alcotest.fail "UNSAT"
  in
  Alcotest.(check string) "spec overrides preference" "1.2.12" (version_of s "zlib")

let test_prefs_variant () =
  let prefs =
    {
      Preferences.empty with
      Preferences.packages =
        [
          ( "hdf5",
            { Preferences.pref_version = None; pref_variants = [ ("szip", "true") ] } );
        ];
    }
  in
  let s =
    match Concretizer.solve_spec ~prefs ~repo "hdf5" with
    | Concretizer.Concrete s -> s
    | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
    | Concretizer.Unsatisfiable _ -> Alcotest.fail "UNSAT"
  in
  Alcotest.(check string) "szip becomes the default" "true" (variant_of s "hdf5" "szip");
  Alcotest.(check bool) "szip node pulled in" true (has_node s "szip")

let test_prefs_greedy_agrees () =
  (* the old concretizer honored configuration preferences too *)
  let prefs =
    {
      Concretize.Preferences.empty with
      Concretize.Preferences.providers = [ ("mpi", [ "openmpi" ]) ];
      packages =
        [
          ( "hdf5",
            {
              Concretize.Preferences.pref_version = Some (Specs.Vrange.of_string "1.12");
              pref_variants = [];
            } );
        ];
    }
  in
  match Greedy.concretize_spec ~prefs ~repo "hdf5" with
  | Greedy.Ok c ->
    let hdf5 = Specs.Spec.Node_map.find "hdf5" c.Specs.Spec.nodes in
    Alcotest.(check string) "greedy prefers 1.12" "1.12.2"
      (Specs.Version.to_string hdf5.Specs.Spec.version);
    Alcotest.(check bool) "greedy uses openmpi" true
      (Specs.Spec.Node_map.mem "openmpi" c.Specs.Spec.nodes)
  | Greedy.Error e -> Alcotest.failf "greedy failed: %s" e.Greedy.message

let test_prefs_provider () =
  let prefs =
    { Preferences.empty with Preferences.providers = [ ("mpi", [ "openmpi" ]) ] }
  in
  let s =
    match Concretizer.solve_spec ~prefs ~repo "hdf5" with
    | Concretizer.Concrete s -> s
    | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
    | Concretizer.Unsatisfiable _ -> Alcotest.fail "UNSAT"
  in
  Alcotest.(check bool) "openmpi chosen" true (has_node s "openmpi");
  Alcotest.(check bool) "mpich not pulled" false (has_node s "mpich")

(* ------------------------------------------------------------------ *)
(* Independent validation (§III-C.1's validity checklist)               *)
(* ------------------------------------------------------------------ *)

let test_validator_accepts_solver_answers () =
  List.iter
    (fun spec ->
      let s = concrete spec in
      let vs = Validate.check ~repo s.Concretizer.spec in
      Alcotest.(check (list string))
        ("no violations for " ^ spec)
        []
        (List.map (Format.asprintf "%a" Validate.pp_violation) vs))
    [ "hdf5"; "example"; "petsc"; "berkeleygw+openmp"; "hpctoolkit ^mpich"; "trilinos" ]

let test_validator_catches_greedy_unsoundness () =
  (* greedy merges the user's ^hdf5+mpi over netcdf-c~mpi's requirement for
     hdf5~mpi without noticing the contradiction; the ASP solver proves the
     request unsatisfiable *)
  let spec = "netcdf-c~mpi ^hdf5+mpi" in
  unsat spec;
  match Greedy.concretize_spec ~repo spec with
  | Greedy.Error _ -> () (* also acceptable: refusing is sound *)
  | Greedy.Ok c ->
    Alcotest.(check bool) "validator flags the greedy answer" false
      (Validate.is_valid ~repo c)

let test_validator_catches_corruption () =
  let s = concrete "example" in
  let spec = s.Concretizer.spec in
  (* tamper: flip the root version to an undeclared one *)
  let root = Specs.Spec.concrete_root spec in
  let tampered =
    Specs.Spec.make_concrete ~root:spec.Specs.Spec.root
      ({ root with Specs.Spec.version = Specs.Version.of_string "99.9" }
      :: List.filter
           (fun (n : Specs.Spec.concrete_node) ->
             n.Specs.Spec.name <> spec.Specs.Spec.root)
           (Specs.Spec.concrete_nodes spec))
  in
  Alcotest.(check bool) "undeclared version flagged" false (Validate.is_valid ~repo tampered)

let prop_synth_solutions_validate =
  QCheck.Test.make ~count:15 ~name:"synthetic-repo answers pass independent validation"
    (QCheck.make ~print:string_of_int (QCheck.Gen.int_range 1 1000))
    (fun seed ->
      let params = { (Pkg.Repo_synth.scaled 60) with Pkg.Repo_synth.seed } in
      let sr = Pkg.Repo_synth.repo params in
      (* pick an application root deterministically from the seed *)
      let apps =
        List.filter
          (fun p -> String.length p > 3 && String.sub p 0 3 = "app")
          (Pkg.Repo.package_names sr)
      in
      let root = List.nth apps (seed mod List.length apps) in
      match Concretizer.solve_spec ~repo:sr root with
      | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
      | Concretizer.Unsatisfiable _ -> true (* conflicts can make roots unsolvable *)
      | Concretizer.Concrete s -> Validate.is_valid ~repo:sr s.Concretizer.spec)

let test_multishot () =
  let roots =
    List.map Specs.Spec_parser.parse [ "hdf5"; "h5utils"; "openblas"; "berkeleygw+openmp" ]
  in
  let ms = Multishot.solve_stack ~repo roots in
  List.iter
    (fun (sh : Multishot.shot) ->
      match sh.Multishot.shot_result with
      | Concretizer.Concrete _ -> ()
      | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
      | Concretizer.Unsatisfiable _ ->
        Alcotest.failf "shot %s failed" sh.Multishot.shot_root)
    ms.Multishot.shots;
  Alcotest.(check bool) "database populated" true (Pkg.Database.size ms.Multishot.db > 10);
  (* later shots must reuse earlier results: the second shot's hdf5 is the
     first shot's hdf5 *)
  (match (List.nth ms.Multishot.shots 1).Multishot.shot_result with
  | Concretizer.Concrete s ->
    Alcotest.(check bool) "h5utils reused the hdf5 shot" true
      (List.exists (fun (p, _) -> p = "hdf5") s.Concretizer.reused)
  | Concretizer.Interrupted _ -> Alcotest.fail "unexpectedly interrupted"
  | Concretizer.Unsatisfiable _ -> Alcotest.fail "h5utils shot failed");
  (* berkeleygw+openmp needs openblas+openmp, but the third shot installed
     openblas~openmp: openblas ends up with two configurations *)
  Alcotest.(check bool) "openblas diverged" true
    (List.mem_assoc "openblas" ms.Multishot.distinct_configs)

(* ------------------------------------------------------------------ *)
(* The service layer's hooks: batch dedup, cache, request keys          *)
(* ------------------------------------------------------------------ *)

let costs_of = function
  | Concretizer.Concrete s -> s.Concretizer.costs
  | _ -> Alcotest.fail "expected a concrete result"

let solve' ~cache spec = Concretizer.solve_spec ~cache ~repo spec

let test_solve_many_dedupes () =
  (* a duplicate-heavy batch: 6 jobs, 2 unique requests (note the second
     zlib spelling differs but normalizes identically) *)
  let batch =
    [ "zlib@1:+shared"; "libiconv"; "zlib+shared@1:"; "zlib@1:+shared";
      "libiconv"; "zlib@1:+shared" ]
  in
  let roots = List.map (fun s -> [ Specs.Spec_parser.parse s ]) batch in
  let dispatches = Atomic.make 0 in
  let fault _round _budget = Atomic.incr dispatches in
  let results = Concretizer.solve_many ~fault ~repo roots in
  Alcotest.(check int) "one result per job" (List.length batch)
    (List.length results);
  Alcotest.(check int) "solved once per unique request" 2
    (Atomic.get dispatches);
  (* the single solve fans out: duplicates get identical results *)
  let r = Array.of_list results in
  Alcotest.(check (list (pair int int))) "zlib fan-out" (costs_of r.(0))
    (costs_of r.(3));
  Alcotest.(check (list (pair int int))) "normalized spelling joins"
    (costs_of r.(0)) (costs_of r.(2));
  Alcotest.(check (list (pair int int))) "libiconv fan-out" (costs_of r.(1))
    (costs_of r.(4))

let test_solve_cache_hook () =
  let store = Hashtbl.create 8 in
  let lookups = ref 0 and stores = ref 0 in
  let cache =
    {
      Concretizer.lookup =
        (fun k ->
          incr lookups;
          Hashtbl.find_opt store k);
      store =
        (fun k r ->
          incr stores;
          Hashtbl.replace store k r);
    }
  in
  let first = solve' ~cache "zlib" in
  Alcotest.(check int) "miss stored" 1 !stores;
  let second = solve' ~cache "zlib" in
  Alcotest.(check int) "two lookups" 2 !lookups;
  Alcotest.(check int) "hit stores nothing" 1 !stores;
  (match (first, second) with
  | Concretizer.Concrete a, Concretizer.Concrete b ->
    Alcotest.(check (list (pair int int))) "identical cost vector"
      a.Concretizer.costs b.Concretizer.costs;
    Alcotest.(check bool) "verified flag intact" a.Concretizer.verified
      b.Concretizer.verified;
    Alcotest.(check (pair (float 0.0) (float 0.0))) "original timings returned"
      ( a.Concretizer.phases.Concretizer.solve_time,
        a.Concretizer.phases.Concretizer.ground_time )
      ( b.Concretizer.phases.Concretizer.solve_time,
        b.Concretizer.phases.Concretizer.ground_time )
  | _ -> Alcotest.fail "expected concrete results");
  (* interrupted results never enter the cache: a budget-starved solve
     under the same key must not poison later solves *)
  let tok = Asp.Budget.token () in
  Asp.Budget.cancel tok;
  let budget = Asp.Budget.start ~cancel:tok Asp.Budget.no_limits in
  (match
     Concretizer.solve ~budget ~cache ~repo [ Specs.Spec_parser.parse "cmake" ]
   with
  | Concretizer.Interrupted _ -> ()
  | _ -> Alcotest.fail "expected an interrupted solve");
  Alcotest.(check int) "interrupted not stored" 1 !stores

let test_request_key () =
  let key ?installed s =
    Concretizer.request_key ?installed ~repo [ Specs.Spec_parser.parse s ]
  in
  Alcotest.(check string) "spelling-invariant" (key "zlib@1:+shared")
    (key "zlib+shared@1:");
  Alcotest.(check bool) "constraint-sensitive" true (key "zlib" <> key "zlib+pic");
  let config = Asp.Config.make ~preset:Asp.Config.Trendy () in
  Alcotest.(check bool) "config-sensitive" true
    (key "zlib"
    <> Concretizer.request_key ~config ~repo [ Specs.Spec_parser.parse "zlib" ]);
  (* budgets are excluded: only proven-optimal results are cached, and those
     do not depend on the limits that produced them *)
  let limits =
    { Asp.Budget.no_limits with Asp.Budget.wall = Some 5.0 }
  in
  let config = Asp.Config.make ~limits () in
  Alcotest.(check string) "budget-insensitive" (key "zlib")
    (Concretizer.request_key ~config ~repo [ Specs.Spec_parser.parse "zlib" ]);
  (* installing anything moves every key *)
  let db = Pkg.Database.create () in
  let k0 = key ~installed:db "zlib" in
  (match solve "zlib" with
  | Concretizer.Concrete s -> Pkg.Database.add_concrete db s.Concretizer.spec
  | _ -> Alcotest.fail "zlib solve failed");
  Alcotest.(check bool) "install invalidates" true (k0 <> key ~installed:db "zlib")

let () =
  Alcotest.run "concretize"
    [
      ( "validity",
        [
          Alcotest.test_case "full validity" `Quick test_validity;
          Alcotest.test_case "dependencies resolved" `Quick test_all_dependencies_resolved;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "newest version" `Quick test_newest_version;
          Alcotest.test_case "preferred provider" `Quick test_preferred_provider;
          Alcotest.test_case "default variants" `Quick test_default_variants;
          Alcotest.test_case "best target and compiler" `Quick test_best_target_and_compiler;
          Alcotest.test_case "compiler limits target" `Quick test_compiler_limits_target;
          Alcotest.test_case "avoid deprecated" `Quick test_no_deprecated_by_default;
          Alcotest.test_case "dag consistency" `Quick test_dag_consistency;
          Alcotest.test_case "constraint propagation" `Quick test_constraint_propagation;
          Alcotest.test_case "flag propagation" `Quick test_flag_propagation;
        ] );
      ( "completeness",
        [
          Alcotest.test_case "version constraints" `Quick test_version_constraint;
          Alcotest.test_case "conditional version dep" `Quick test_conditional_version_dep;
          Alcotest.test_case "conflicts" `Quick test_conflicts;
          Alcotest.test_case "conditional dependency (V-B.1)" `Quick
            test_conditional_dependency_completeness;
          Alcotest.test_case "variant forcing" `Quick test_variant_forcing_on_root;
          Alcotest.test_case "backtracking (III-C.2)" `Quick test_backtracking_version_choice;
          Alcotest.test_case "provider specialization (V-B.3)" `Quick
            test_provider_specialization;
          Alcotest.test_case "multi-root unification" `Quick test_multi_root_unification;
          Alcotest.test_case "unknown package" `Quick test_unknown_package;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "prefers installed" `Quick test_reuse_prefers_installed;
          Alcotest.test_case "partial reuse (Fig. 6)" `Quick test_reuse_counts_vs_hash_reuse;
          Alcotest.test_case "respects constraints" `Quick test_reuse_respects_constraints;
          Alcotest.test_case "new builds use defaults" `Quick test_new_builds_use_defaults;
          Alcotest.test_case "empty cache" `Quick test_empty_cache_same_as_no_cache;
          Alcotest.test_case "greedy hash reuse" `Quick test_greedy_hash_reuse;
        ] );
      ( "validation",
        [
          Alcotest.test_case "solver answers validate" `Quick
            test_validator_accepts_solver_answers;
          Alcotest.test_case "greedy unsoundness caught" `Quick
            test_validator_catches_greedy_unsoundness;
          Alcotest.test_case "corruption caught" `Quick test_validator_catches_corruption;
          QCheck_alcotest.to_alcotest prop_synth_solutions_validate;
        ] );
      ( "multishot",
        [ Alcotest.test_case "divide and conquer" `Quick test_multishot ] );
      ( "service hooks",
        [
          Alcotest.test_case "solve_many dedupes" `Quick test_solve_many_dedupes;
          Alcotest.test_case "cache hook" `Quick test_solve_cache_hook;
          Alcotest.test_case "request keys" `Quick test_request_key;
        ] );
      ( "preferences",
        [
          Alcotest.test_case "preferred version" `Quick test_prefs_version;
          Alcotest.test_case "preferred variant" `Quick test_prefs_variant;
          Alcotest.test_case "preferred provider" `Quick test_prefs_provider;
          Alcotest.test_case "greedy honors preferences" `Quick test_prefs_greedy_agrees;
        ] );
      ( "internals",
        [
          Alcotest.test_case "fact generation" `Quick test_fact_generation;
          Alcotest.test_case "fact generation with reuse" `Quick
            test_fact_generation_with_reuse;
          Alcotest.test_case "phases measured" `Quick test_phases_measured;
          Alcotest.test_case "unsat diagnostics" `Quick test_diagnostics;
          Alcotest.test_case "logic program size" `Quick test_logic_program_size;
          Alcotest.test_case "greedy toolchain inheritance" `Quick
            test_greedy_inherits_toolchain;
          Alcotest.test_case "greedy unknown variant" `Quick test_greedy_unknown_variant;
          Alcotest.test_case "bb and usc agree" `Quick
            test_strategies_agree_on_concretization;
        ] );
    ]
