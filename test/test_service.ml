(* Robustness tests for the production-hardened service: the write-ahead
   install journal (torn writes, stale formats, replay idempotence),
   crash-point recovery differentials (recovered state must equal a clean
   run), concurrent installers and cache writers, the client's
   reconnect/backoff layer, and the supervised daemon's failure handling
   (worker crashes and wedges, enqueue-time deadlines, per-client token
   buckets, graceful drain). *)

module C = Concretize.Concretizer
module J = Server.Json

let repo = Pkg.Repo_core.repo

(* a slow instance: solves take long enough to observe queues and drains *)
let slow_repo = lazy (Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled 4000))

let uid =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%d-%d" (Unix.getpid ()) !n

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ()) ("spack-svc-" ^ uid ())
  in
  Unix.mkdir d 0o755;
  d

let concrete spec =
  match C.solve_spec ~repo spec with
  | C.Concrete s -> s
  | _ -> Alcotest.failf "expected a concrete result for %s" spec

let with_faults f =
  Fun.protect ~finally:Asp.Fault.disarm_services (fun () ->
      Asp.Fault.disarm_services ();
      f ())

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let test_journal_roundtrip () =
  let dir = temp_dir () in
  let path = Filename.concat dir "installs.journal" in
  let s1 = concrete "zlib" in
  let s2 = concrete "libiconv" in
  let j = Server.Journal.open_ path in
  let seq1 = Server.Journal.append_intent j s1.C.spec in
  Server.Journal.append_commit j seq1;
  (* second intent crashes before its commit marker *)
  let _seq2 = Server.Journal.append_intent j s2.C.spec in
  Server.Journal.close j;
  let r = Server.Journal.replay path in
  Alcotest.(check int) "both intents survive" 2 (List.length r.Server.Journal.entries);
  Alcotest.(check bool) "no torn tail" false r.Server.Journal.truncated;
  (match r.Server.Journal.entries with
  | [ e1; e2 ] ->
    Alcotest.(check bool) "first committed" true e1.Server.Journal.committed;
    Alcotest.(check bool) "second uncommitted" false e2.Server.Journal.committed;
    Alcotest.(check string) "payload DAG intact"
      (Specs.Spec.node_hash s2.C.spec s2.C.spec.Specs.Spec.root)
      (Specs.Spec.node_hash e2.Server.Journal.spec
         e2.Server.Journal.spec.Specs.Spec.root)
  | _ -> Alcotest.fail "unexpected entry list");
  (* replay is read-repair, not consumption: a second replay agrees *)
  let r2 = Server.Journal.replay path in
  Alcotest.(check int) "replay is idempotent" 2
    (List.length r2.Server.Journal.entries)

let test_journal_torn_tail () =
  with_faults (fun () ->
      let dir = temp_dir () in
      let path = Filename.concat dir "installs.journal" in
      let s1 = concrete "zlib" in
      let s2 = concrete "libiconv" in
      let j = Server.Journal.open_ path in
      let seq1 = Server.Journal.append_intent j s1.C.spec in
      Server.Journal.append_commit j seq1;
      (* the next append writes only half its bytes: a crash mid-write *)
      Asp.Fault.arm_service Asp.Fault.Journal_tear 1;
      ignore (Server.Journal.append_intent j s2.C.spec);
      Server.Journal.close j;
      let r = Server.Journal.replay path in
      Alcotest.(check bool) "tear detected" true r.Server.Journal.truncated;
      Alcotest.(check int) "valid prefix survives" 1
        (List.length r.Server.Journal.entries);
      (* replay repaired the file in place: appends work again and the
         journal parses cleanly *)
      let j2 = Server.Journal.open_ path in
      let seq = Server.Journal.append_intent j2 s2.C.spec in
      Server.Journal.append_commit j2 seq;
      Server.Journal.close j2;
      let r2 = Server.Journal.replay path in
      Alcotest.(check bool) "clean after repair" false r2.Server.Journal.truncated;
      Alcotest.(check int) "old + new entries" 2
        (List.length r2.Server.Journal.entries))

let test_journal_stale_rotation () =
  let dir = temp_dir () in
  let path = Filename.concat dir "installs.journal" in
  let oc = open_out path in
  output_string oc "spack-install-journal v999\nI\t1\tdeadbeef\t{}\n";
  close_out oc;
  let r = Server.Journal.replay path in
  Alcotest.(check bool) "rotated" true r.Server.Journal.rotated;
  Alcotest.(check int) "nothing misparsed" 0 (List.length r.Server.Journal.entries);
  Alcotest.(check bool) "moved to .stale" true (Sys.file_exists (path ^ ".stale"));
  (* the slot is free for a fresh journal *)
  let j = Server.Journal.open_ path in
  let s = concrete "zlib" in
  ignore (Server.Journal.append_intent j s.C.spec);
  Server.Journal.close j;
  Alcotest.(check int) "fresh journal usable" 1
    (List.length (Server.Journal.replay path).Server.Journal.entries)

(* ------------------------------------------------------------------ *)
(* Crash-point recovery differentials                                  *)
(* ------------------------------------------------------------------ *)

exception Simulated_crash

let service_state ?crash ?(journal_max_bytes = 0) ?repl ?(follower = false)
    ~dir () =
  let cfg =
    {
      Server.State.repo;
      solver = Asp.Config.default;
      cache = Server.Cache.create ();
      db = Pkg.Database.create ();
      db_path = Some (Filename.concat dir "installed.db");
      journal = Some (Server.Journal.open_ (Filename.concat dir "installed.db.journal"));
      journal_max_bytes;
      repl;
      follower;
      timeout = None;
      client_rate = 0.;
      client_burst = 8.;
      max_pending = 8;
      crash;
    }
  in
  Server.State.create ~jobs:1 cfg

let shutdown_state st = Asp.Pool.shutdown st.Server.State.pool

(* Kill the install at each crash point; recovery must produce exactly the
   database a clean, uncrashed run would have. *)
let test_recovery_differential () =
  let spec1 = concrete "zlib" in
  let spec2 = concrete "hdf5" in
  (* the reference: a clean run *)
  let clean_dir = temp_dir () in
  let clean = service_state ~dir:clean_dir () in
  ignore (Server.State.record_install clean spec1);
  ignore (Server.State.record_install clean spec2);
  let clean_fp = Pkg.Database.fingerprint (Server.State.db clean) in
  shutdown_state clean;
  List.iter
    (fun point ->
      let dir = temp_dir () in
      let st =
        service_state ~crash:(point, fun () -> raise Simulated_crash) ~dir ()
      in
      ignore (Server.State.record_install { st with cfg = { st.Server.State.cfg with crash = None } } spec1);
      (match Server.State.record_install st spec2 with
      | _ -> Alcotest.fail "crash seam did not fire"
      | exception Simulated_crash -> ());
      shutdown_state st;
      (* the process died; a new one recovers from disk *)
      let r =
        Server.State.recover
          ~db_path:(Filename.concat dir "installed.db")
          ~journal_path:(Filename.concat dir "installed.db.journal")
          ()
      in
      Alcotest.(check bool) "journal had entries to replay" true
        (r.Server.State.replayed >= 1);
      Alcotest.(check string) "recovered database equals the clean run"
        clean_fp
        (Pkg.Database.fingerprint r.Server.State.db0);
      (* recovery reset the journal: running it again changes nothing *)
      let r2 =
        Server.State.recover
          ~db_path:(Filename.concat dir "installed.db")
          ~journal_path:(Filename.concat dir "installed.db.journal")
          ()
      in
      Alcotest.(check int) "second recovery replays nothing" 0
        r2.Server.State.replayed;
      Alcotest.(check string) "and agrees" clean_fp
        (Pkg.Database.fingerprint r2.Server.State.db0))
    [ Server.State.After_intent; Server.State.After_save ]

let test_concurrent_installs () =
  let dir = temp_dir () in
  let specs =
    List.map concrete [ "zlib"; "libiconv"; "hdf5"; "fftw" ]
  in
  let st = service_state ~dir () in
  let install s = ignore (Server.State.record_install st s) in
  let half n = List.filteri (fun i _ -> i mod 2 = n) specs in
  let d1 = Domain.spawn (fun () -> List.iter install (half 0)) in
  let d2 = Domain.spawn (fun () -> List.iter install (half 1)) in
  Domain.join d1;
  Domain.join d2;
  let live_fp = Pkg.Database.fingerprint (Server.State.db st) in
  let live_size = Pkg.Database.size (Server.State.db st) in
  Server.State.persist st;
  shutdown_state st;
  Alcotest.(check bool) "overlapping DAGs recorded once" true (live_size >= 4);
  (* recovery over what the interleaved writers left on disk agrees with
     the in-memory end state *)
  let r =
    Server.State.recover
      ~db_path:(Filename.concat dir "installed.db")
      ~journal_path:(Filename.concat dir "installed.db.journal")
      ()
  in
  Alcotest.(check int) "same size" live_size (Pkg.Database.size r.Server.State.db0);
  Alcotest.(check string) "same fingerprint" live_fp
    (Pkg.Database.fingerprint r.Server.State.db0)

(* ------------------------------------------------------------------ *)
(* Cache under concurrent writers and torn files                       *)
(* ------------------------------------------------------------------ *)

let test_cache_concurrent_writers () =
  let dir = temp_dir () in
  let r = C.Concrete (concrete "zlib") in
  let cache = Server.Cache.create ~dir ~mem_capacity:64 () in
  let n_domains = 4 and per_domain = 8 in
  let key d i = Printf.sprintf "key-%d-%d" d i in
  let writer d () =
    for i = 0 to per_domain - 1 do
      Server.Cache.store cache (key d i) r;
      (* interleave reads of other writers' keys *)
      ignore (Server.Cache.lookup cache (key ((d + 1) mod n_domains) i))
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (writer d)) in
  List.iter Domain.join ds;
  (* a fresh instance over the same directory reads every entry back *)
  let fresh = Server.Cache.create ~dir () in
  for d = 0 to n_domains - 1 do
    for i = 0 to per_domain - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "%s readable" (key d i))
        true
        (Server.Cache.lookup fresh (key d i) <> None)
    done
  done;
  (* tear one entry's file mid-payload: that key degrades to a miss, the
     rest stay servable *)
  let victim = Filename.concat dir "key-0-0.solve" in
  let len = (Unix.stat victim).Unix.st_size in
  let fd = Unix.openfile victim [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len / 2);
  Unix.close fd;
  let fresh2 = Server.Cache.create ~dir () in
  Alcotest.(check bool) "torn entry is a miss" true
    (Server.Cache.lookup fresh2 "key-0-0" = None);
  Alcotest.(check bool) "neighbours unaffected" true
    (Server.Cache.lookup fresh2 "key-1-0" <> None)

(* ------------------------------------------------------------------ *)
(* Client reconnect / backoff against a toy server                     *)
(* ------------------------------------------------------------------ *)

let toy_socket () =
  Filename.concat (Filename.get_temp_dir_name ()) ("toy-" ^ uid () ^ ".sock")

let listen_on path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  fd

let reply_properly fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (match input_line ic with
  | line ->
    let id =
      match J.of_string line with
      | Ok j -> Option.value ~default:0 (Option.bind (J.member "id" j) J.to_int)
      | Error _ -> 0
    in
    output_string oc
      (J.to_string (Server.Protocol.response_to_json ~id Server.Protocol.Bye));
    output_char oc '\n';
    flush oc
  | exception (End_of_file | Sys_error _) -> ());
  (* hold the connection until the client hangs up *)
  (try ignore (input_line ic) with End_of_file | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let test_client_reconnects () =
  let path = toy_socket () in
  let listen = listen_on path in
  let server =
    Domain.spawn (fun () ->
        (* first connection: read the request, then slam the door *)
        let fd, _ = Unix.accept listen in
        ignore (Unix.read fd (Bytes.create 512) 0 512);
        Unix.close fd;
        (* second connection: behave *)
        let fd, _ = Unix.accept listen in
        reply_properly fd)
  in
  (match Server.Client.connect ~retries:4 ~backoff:0.01 path with
  | Error m -> Alcotest.failf "connect failed: %s" m
  | Ok c ->
    (match Server.Client.request c Server.Protocol.Shutdown with
    | Ok Server.Protocol.Bye -> ()
    | Ok _ -> Alcotest.fail "unexpected reply"
    | Error m -> Alcotest.failf "request did not survive the reset: %s" m);
    Alcotest.(check bool) "reconnect counted" true
      (Server.Client.reconnects c >= 1);
    Server.Client.close c);
  Domain.join server;
  Unix.close listen

let test_client_recv_timeout () =
  let path = toy_socket () in
  let listen = listen_on path in
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        (* accept and never answer *)
        let conns = ref [] in
        while not (Atomic.get stop) do
          match Unix.select [ listen ] [] [] 0.05 with
          | [], _, _ -> ()
          | _ ->
            let fd, _ = Unix.accept listen in
            conns := fd :: !conns
          | exception Unix.Unix_error _ -> ()
        done;
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !conns)
  in
  let t0 = Unix.gettimeofday () in
  (match Server.Client.connect ~retries:1 ~backoff:0.01 ~recv_timeout:0.2 path with
  | Error m -> Alcotest.failf "connect failed: %s" m
  | Ok c ->
    (match Server.Client.request c Server.Protocol.Stats with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "a mute server cannot produce a reply");
    Server.Client.close c);
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "bounded by the receive timeout, no hang" true
    (elapsed < 5.0);
  Atomic.set stop true;
  Domain.join server;
  Unix.close listen

(* ------------------------------------------------------------------ *)
(* Daemon failure handling                                             *)
(* ------------------------------------------------------------------ *)

let with_daemon ?(repo = repo) ?(workers = 2) ?(jobs = 2) ?(max_pending = 8)
    ?timeout ?(client_rate = 0.) ?(client_burst = 8.) ?(drain_grace = 5.0)
    ?(wedge_timeout = 10.0) ?db ?db_path ?journal_path ?(journal_max_bytes = 0)
    ?follow ?(repl_ack = Server.Replica.Ack_async) f =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      ("spacksvc-" ^ uid () ^ ".sock")
  in
  let cfg =
    {
      Server.Daemon.socket_path = sock;
      repo;
      solver = Asp.Config.default;
      db = (match db with Some db -> db | None -> Pkg.Database.create ());
      db_path;
      journal_path;
      journal_max_bytes;
      follow;
      repl_ack;
      cache = Server.Cache.create ();
      workers;
      jobs;
      max_pending;
      timeout;
      client_rate;
      client_burst;
      drain_grace;
      wedge_timeout;
      crash = None;
    }
  in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.Daemon.serve ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let finally () =
    (match Server.Client.connect sock with
    | Ok c ->
      ignore (Server.Client.request c Server.Protocol.Shutdown);
      Server.Client.close c
    | Error _ -> ());
    Domain.join d
  in
  Fun.protect ~finally (fun () -> f sock)

let client ?recv_timeout sock =
  match Server.Client.connect ?recv_timeout sock with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect failed: %s" m

let request c req =
  match Server.Client.request c req with
  | Ok resp -> resp
  | Error m -> Alcotest.failf "request failed: %s" m

let stats_int c section field =
  match request c Server.Protocol.Stats with
  | Server.Protocol.Stats_reply j -> (
    match
      Option.bind (J.member section j) (fun s ->
          Option.bind (J.member field s) J.to_int)
    with
    | Some n -> n
    | None -> Alcotest.failf "stats field %s.%s missing" section field)
  | _ -> Alcotest.fail "expected a stats reply"

let stats_str c section field =
  match request c Server.Protocol.Stats with
  | Server.Protocol.Stats_reply j -> (
    match
      Option.bind (J.member section j) (fun s ->
          Option.bind (J.member field s) J.to_str)
    with
    | Some s -> s
    | None -> Alcotest.failf "stats field %s.%s missing" section field)
  | _ -> Alcotest.fail "expected a stats reply"

let test_daemon_worker_crash_restart () =
  with_faults (fun () ->
      with_daemon ~workers:2 (fun sock ->
          let c1 = client sock in
          let c2 = client sock in
          Asp.Fault.arm_service Asp.Fault.Worker_crash 1;
          (* c1's request kills its worker mid-handling; the supervisor
             closes the leaked connection, c1 reconnects onto a healthy
             worker and the resent request succeeds *)
          (match request c1 (Server.Protocol.solve "zlib") with
          | Server.Protocol.Result { result = C.Concrete _; _ } -> ()
          | _ -> Alcotest.fail "expected a concrete result after restart");
          Alcotest.(check bool) "the crash forced a reconnect" true
            (Server.Client.reconnects c1 >= 1);
          (* the other worker's client was never disturbed, and the
             supervisor recorded the restart *)
          Alcotest.(check bool) "restart counted" true
            (stats_int c2 "supervisor" "restarts" >= 1);
          Server.Client.close c1;
          Server.Client.close c2))

let test_daemon_worker_wedge_quarantine () =
  with_faults (fun () ->
      with_daemon ~workers:2 ~wedge_timeout:0.3 (fun sock ->
          let c1 = client sock in
          Asp.Fault.arm_service Asp.Fault.Worker_wedge 1;
          (* the handling worker blocks for ~2s; the supervisor notices the
             stalled heartbeat after 0.3s and quarantines it; when it wakes
             it tears down, c1 sees EOF and retries on the replacement *)
          (match request c1 (Server.Protocol.solve "zlib") with
          | Server.Protocol.Result { result = C.Concrete _; _ } -> ()
          | _ -> Alcotest.fail "expected a concrete result after quarantine");
          let c2 = client sock in
          Alcotest.(check bool) "wedge counted" true
            (stats_int c2 "supervisor" "wedged" >= 1);
          Server.Client.close c1;
          Server.Client.close c2))

let test_daemon_reply_faults () =
  with_faults (fun () ->
      with_daemon ~workers:1 (fun sock ->
          let c = client sock in
          (* dropped socket instead of a reply: transparent retry *)
          Asp.Fault.arm_service Asp.Fault.Drop_socket 1;
          (match request c (Server.Protocol.solve "zlib") with
          | Server.Protocol.Result _ -> ()
          | _ -> Alcotest.fail "expected a result after a dropped socket");
          Alcotest.(check bool) "drop forced a reconnect" true
            (Server.Client.reconnects c >= 1);
          (* half-written reply then close: the client treats the garbage
             frame as transient and retries *)
          Asp.Fault.arm_service Asp.Fault.Truncate_response 1;
          (match request c (Server.Protocol.solve "libiconv") with
          | Server.Protocol.Result _ -> ()
          | _ -> Alcotest.fail "expected a result after a truncated reply");
          (* delayed reply: no disconnect, just one event-loop round late *)
          let before = Server.Client.reconnects c in
          Asp.Fault.arm_service Asp.Fault.Delay_response 1;
          (match request c (Server.Protocol.solve "zlib") with
          | Server.Protocol.Result _ -> ()
          | _ -> Alcotest.fail "expected a delayed result");
          Alcotest.(check int) "no reconnect for a mere delay" before
            (Server.Client.reconnects c);
          Server.Client.close c))

let test_daemon_enqueue_deadline () =
  with_daemon ~repo:(Lazy.force slow_repo) ~jobs:1 (fun sock ->
      (* occupy the single solver domain with an *unbounded* solve on a raw
         socket: it holds the domain until we hang up, so no amount of
         scheduler or test-runner latency can let it finish early and mask
         the deadline check *)
      let raw spec timeout =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock);
        let line =
          J.to_string
            (Server.Protocol.request_to_json (Server.Protocol.solve ?timeout spec))
          ^ "\n"
        in
        ignore (Unix.write_substring fd line 0 (String.length line));
        fd
      in
      let fd_slow = raw "app-000" None in
      let c = client sock in
      let await_submitted n =
        let deadline = Unix.gettimeofday () +. 10.0 in
        while
          stats_int c "scheduler" "submitted" < n
          && Unix.gettimeofday () < deadline
        do
          Unix.sleepf 0.01
        done
      in
      await_submitted 1;
      (* queue a request with a 0.05s end-to-end deadline behind the slow
         solve, wait until it is demonstrably queued, let its deadline
         lapse, then hang up the slow solve so the queue advances: the
         expired job must be shed with a typed deadline result, not solved
         with a leftover sliver of budget *)
      let fd_exp = raw "app-001" (Some 0.05) in
      await_submitted 2;
      Unix.sleepf 0.1;
      Unix.close fd_slow;
      let ic = Unix.in_channel_of_descr fd_exp in
      (match J.of_string (input_line ic) with
      | Error m -> Alcotest.failf "unparsable reply: %s" m
      | Ok j -> (
        match Server.Protocol.response_of_json j with
        | Ok
            ( _,
              Server.Protocol.Result
                {
                  result =
                    C.Interrupted
                      { info = { Asp.Budget.reason = Asp.Budget.Deadline; _ }; _ };
                  _;
                } ) ->
          ()
        | Ok _ -> Alcotest.fail "expected a typed deadline result"
        | Error m -> Alcotest.failf "malformed reply: %s" m));
      Alcotest.(check bool) "expired counted" true
        (stats_int c "server" "expired" >= 1);
      Server.Client.close c;
      Unix.close fd_exp)

let test_daemon_token_bucket () =
  with_daemon ~client_rate:0.001 ~client_burst:2. (fun sock ->
      let c = client sock in
      (* three roots in one batch against a burst of two: refused outright,
         before any solver work *)
      (match
         request c (Server.Protocol.solve_many [ "zlib"; "libiconv"; "hdf5" ])
       with
      | Server.Protocol.Error { kind = Server.Protocol.Overloaded; message } ->
        Alcotest.(check bool) "names the rate limit" true
          (String.length message > 0)
      | _ -> Alcotest.fail "expected a typed Overloaded shed");
      Alcotest.(check bool) "throttle counted" true
        (stats_int c "server" "throttled" >= 1);
      (* within budget the same client still solves *)
      (match request c (Server.Protocol.solve "zlib") with
      | Server.Protocol.Result _ -> ()
      | _ -> Alcotest.fail "expected a result within the budget");
      (* a different client has its own bucket *)
      let c2 = client sock in
      (match request c2 (Server.Protocol.solve_many [ "zlib"; "libiconv" ]) with
      | Server.Protocol.Results _ -> ()
      | _ -> Alcotest.fail "another client must not inherit the empty bucket");
      Server.Client.close c;
      Server.Client.close c2)

let test_daemon_graceful_drain () =
  with_daemon ~repo:(Lazy.force slow_repo) ~jobs:1 ~drain_grace:0.5
    (fun sock ->
      (* leave a slow solve in flight, then ask for shutdown: the daemon
         stops accepting, the grace period expires, in-flight work is
         cancelled and the service exits instead of hanging *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let line =
        J.to_string
          (Server.Protocol.request_to_json (Server.Protocol.solve "app-002"))
        ^ "\n"
      in
      ignore (Unix.write_substring fd line 0 (String.length line));
      Unix.sleepf 0.05;
      let c = client sock in
      (match request c Server.Protocol.Shutdown with
      | Server.Protocol.Bye -> ()
      | _ -> Alcotest.fail "expected Bye");
      Server.Client.close c;
      Unix.close fd;
      (* new work is refused: the socket is gone or the reply is a typed
         draining shed — never a fresh solve *)
      match Server.Client.connect ~retries:0 ~recv_timeout:2.0 sock with
      | Error _ -> ()
      | Ok c2 -> (
        (match Server.Client.request_once c2 (Server.Protocol.solve "app-003") with
        | Ok (Server.Protocol.Result _) ->
          Alcotest.fail "daemon accepted new work while draining"
        | Ok _ | Error _ -> ());
        Server.Client.close c2))
(* with_daemon's teardown then joins the daemon domain: if drain hangs,
   the test hangs — the join itself is the assertion *)

(* ------------------------------------------------------------------ *)
(* Replication: journal shipping to hot-standby daemons                *)
(* ------------------------------------------------------------------ *)

let wait_for ?(timeout = 30.) msg f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if not (f ()) then
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "timed out waiting for %s" msg
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let install_via c spec =
  match request c (Server.Protocol.install spec) with
  | Server.Protocol.Installed _ -> ()
  | Server.Protocol.Error { message; _ } ->
    Alcotest.failf "install %s refused: %s" spec message
  | _ -> Alcotest.failf "expected an Installed reply for %s" spec

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* A follower started against a primary that already compacted its journal
   must catch up via a database snapshot, then track the live record
   stream; its database must be byte-identical to the primary's. *)
let test_repl_follower_equivalence () =
  let pdir = temp_dir () and fdir = temp_dir () in
  with_daemon
    ~db_path:(Filename.concat pdir "installed.db")
    ~journal_path:(Filename.concat pdir "installed.db.journal")
    ~journal_max_bytes:1 (* compact after every install *)
    (fun psock ->
      let pc = client psock in
      (* two installs land before any follower exists, and aggressive
         compaction folds them into the database snapshot *)
      install_via pc "zlib";
      install_via pc "libiconv";
      with_daemon
        ~db_path:(Filename.concat fdir "installed.db")
        ~journal_path:(Filename.concat fdir "installed.db.journal")
        ~follow:psock
        (fun fsock ->
          let fc = client fsock in
          Alcotest.(check string) "standby reports the follower role"
            "follower"
            (stats_str fc "replication" "role");
          (* counters trail the database swap by a few instructions, so
             the wait covers both *)
          wait_for "snapshot catch-up" (fun () ->
              stats_int fc "replication" "snapshots" >= 1
              && stats_str fc "server" "db_fingerprint"
                 = stats_str pc "server" "db_fingerprint");
          (* a live install now streams as a (seq, intent, commit) record *)
          install_via pc "hdf5";
          wait_for "live record stream" (fun () ->
              stats_int fc "replication" "stream_applied" >= 1
              && stats_str fc "server" "db_fingerprint"
                 = stats_str pc "server" "db_fingerprint");
          Alcotest.(check bool) "primary sees its follower" true
            (stats_int pc "replication" "followers" >= 1);
          (* a follower is read-only: installs are refused with a typed
             error the client can use to fail over *)
          (match request fc (Server.Protocol.install "fftw") with
          | Server.Protocol.Error { kind = Server.Protocol.Read_only; _ } ->
            ()
          | _ -> Alcotest.fail "follower accepted an install");
          Server.Client.close fc);
      Server.Client.close pc);
  (* both shut down cleanly; now tear the follower's journal (a crash
     mid-replicated-append) — recovery must drop the torn tail and still
     reproduce the replicated database from the saved snapshot *)
  let fj = Filename.concat fdir "installed.db.journal" in
  write_file fj (read_file fj ^ "I\t99\tdeadbeef\ttorn{");
  let r =
    Server.State.recover
      ~db_path:(Filename.concat fdir "installed.db")
      ~journal_path:fj ()
  in
  Alcotest.(check bool) "torn replicated tail detected" true
    r.Server.State.truncated;
  let p =
    Server.State.recover
      ~db_path:(Filename.concat pdir "installed.db")
      ~journal_path:(Filename.concat pdir "installed.db.journal")
      ()
  in
  Alcotest.(check string) "follower recovery equals primary recovery"
    (Pkg.Database.fingerprint p.Server.State.db0)
    (Pkg.Database.fingerprint r.Server.State.db0)

(* Under --repl-ack=sync the client-visible install ack implies the record
   is already durable on the follower: copying the follower's on-disk
   state the moment the ack returns (as a kill -9 would freeze it) and
   recovering from the copy must reproduce the install. *)
let test_repl_sync_ack_durability () =
  let pdir = temp_dir () and fdir = temp_dir () and snap = temp_dir () in
  with_daemon
    ~db_path:(Filename.concat pdir "installed.db")
    ~journal_path:(Filename.concat pdir "installed.db.journal")
    ~repl_ack:Server.Replica.Ack_sync
    (fun psock ->
      let pc = client psock in
      with_daemon
        ~db_path:(Filename.concat fdir "installed.db")
        ~journal_path:(Filename.concat fdir "installed.db.journal")
        ~follow:psock
        (fun _fsock ->
          wait_for "follower subscription" (fun () ->
              stats_int pc "replication" "followers" >= 1);
          install_via pc "zlib";
          (* freeze the follower's disk state as of the ack *)
          write_file
            (Filename.concat snap "installed.db")
            (read_file (Filename.concat fdir "installed.db"));
          write_file
            (Filename.concat snap "installed.db.journal")
            (read_file (Filename.concat fdir "installed.db.journal"));
          Alcotest.(check int) "no ack was follower-less" 0
            (stats_int pc "replication" "sync_degraded");
          Alcotest.(check int) "no ack timed out waiting for the follower" 0
            (stats_int pc "replication" "sync_timeouts");
          Alcotest.(check bool) "the follower acked" true
            (stats_int pc "replication" "acked" >= 1));
      let live_fp = stats_str pc "server" "db_fingerprint" in
      let r =
        Server.State.recover
          ~db_path:(Filename.concat snap "installed.db")
          ~journal_path:(Filename.concat snap "installed.db.journal")
          ()
      in
      Alcotest.(check string)
        "follower state frozen at ack time reproduces the install" live_fp
        (Pkg.Database.fingerprint r.Server.State.db0);
      Server.Client.close pc)

(* Promotion flips a follower to primary in a new epoch; installs are
   accepted from then on. *)
let test_repl_promotion () =
  let pdir = temp_dir () and fdir = temp_dir () in
  with_daemon
    ~db_path:(Filename.concat pdir "installed.db")
    ~journal_path:(Filename.concat pdir "installed.db.journal")
    (fun psock ->
      let pc = client psock in
      with_daemon
        ~db_path:(Filename.concat fdir "installed.db")
        ~journal_path:(Filename.concat fdir "installed.db.journal")
        ~follow:psock
        (fun fsock ->
          install_via pc "zlib";
          let fc = client fsock in
          wait_for "replication of the first install" (fun () ->
              stats_str fc "server" "db_fingerprint"
              = stats_str pc "server" "db_fingerprint");
          (match request fc Server.Protocol.Promote with
          | Server.Protocol.Promoted { epoch } ->
            Alcotest.(check int) "promotion bumps the epoch" 2 epoch
          | _ -> Alcotest.fail "expected a Promoted reply");
          Alcotest.(check string) "promoted standby reports primary"
            "primary"
            (stats_str fc "replication" "role");
          (* idempotent: a second promote reports the same epoch *)
          (match request fc Server.Protocol.Promote with
          | Server.Protocol.Promoted { epoch } ->
            Alcotest.(check int) "promote is idempotent" 2 epoch
          | _ -> Alcotest.fail "expected a Promoted reply");
          (* the new primary accepts installs *)
          install_via fc "libiconv";
          Server.Client.close fc);
      Server.Client.close pc)

(* A stale primary rejoining as a follower is fenced: its journal (with
   entries the new epoch never saw) is rotated aside, its database wiped
   and resynced — the unreplicated tail cannot leak into the new epoch. *)
let test_repl_stale_primary_fenced () =
  let dir_a = temp_dir () and dir_b = temp_dir () in
  (* epoch-1 primary A: one replicated install, then death; a second
     committed entry lands in its journal that nobody ever saw *)
  let st = service_state ~dir:dir_a () in
  ignore (Server.State.record_install st (concrete "zlib"));
  Server.State.persist st;
  shutdown_state st;
  let ja = Server.Journal.open_ (Filename.concat dir_a "installed.db.journal") in
  let seq = Server.Journal.append_intent ja (concrete "libiconv").C.spec in
  Server.Journal.append_commit ja seq;
  Server.Journal.close ja;
  (* B was promoted meanwhile: epoch 2 *)
  let jb = Server.Journal.open_ (Filename.concat dir_b "installed.db.journal") in
  Server.Journal.bump_epoch jb 2;
  Server.Journal.close jb;
  with_daemon
    ~db_path:(Filename.concat dir_b "installed.db")
    ~journal_path:(Filename.concat dir_b "installed.db.journal")
    (fun bsock ->
      let bc = client bsock in
      Alcotest.(check int) "B leads epoch 2" 2
        (stats_int bc "replication" "epoch");
      install_via bc "hdf5";
      (* A rejoins as a follower, announcing epoch 1 *)
      let ra =
        Server.State.recover
          ~db_path:(Filename.concat dir_a "installed.db")
          ~journal_path:(Filename.concat dir_a "installed.db.journal")
          ()
      in
      Alcotest.(check bool) "A recovered its unreplicated tail" true
        (Pkg.Database.size ra.Server.State.db0 >= 2);
      with_daemon ~db:ra.Server.State.db0
        ~db_path:(Filename.concat dir_a "installed.db")
        ~journal_path:(Filename.concat dir_a "installed.db.journal")
        ~follow:bsock
        (fun asock ->
          let ac = client asock in
          wait_for "fencing and resync" (fun () ->
              stats_int ac "replication" "epoch" = 2
              && stats_str ac "server" "db_fingerprint"
                 = stats_str bc "server" "db_fingerprint");
          Alcotest.(check bool) "A counted the reset" true
            (stats_int ac "replication" "resyncs" >= 1);
          Alcotest.(check bool) "B counted the fence" true
            (stats_int bc "replication" "resets_sent" >= 1);
          Alcotest.(check bool) "A's dead-epoch journal rotated aside" true
            (Sys.file_exists
               (Filename.concat dir_a "installed.db.journal.stale"));
          Server.Client.close ac);
      Server.Client.close bc)

(* Follower crash mid-stream and a hub-dropped record: both resume from
   the durable position and converge (the drop is detected as a sequence
   gap on the next record). *)
let test_repl_follower_crash_and_gap () =
  with_faults (fun () ->
      let pdir = temp_dir () and fdir = temp_dir () in
      with_daemon
        ~db_path:(Filename.concat pdir "installed.db")
        ~journal_path:(Filename.concat pdir "installed.db.journal")
        (fun psock ->
          let pc = client psock in
          with_daemon
            ~db_path:(Filename.concat fdir "installed.db")
            ~journal_path:(Filename.concat fdir "installed.db.journal")
            ~follow:psock
            (fun fsock ->
              let fc = client fsock in
              wait_for "follower subscription" (fun () ->
                  stats_int pc "replication" "followers" >= 1);
              (* the apply loop dies on the next record; the follower
                 domain reconnects and resumes from its fsynced position *)
              Asp.Fault.arm_service Asp.Fault.Follower_crash 1;
              install_via pc "zlib";
              wait_for "recovery from the crash" (fun () ->
                  stats_str fc "server" "db_fingerprint"
                  = stats_str pc "server" "db_fingerprint");
              (* the hub silently drops the next record; the follower only
                 notices when the one after arrives as a gap *)
              Asp.Fault.arm_service Asp.Fault.Repl_drop 1;
              install_via pc "libiconv";
              install_via pc "hdf5";
              wait_for "gap resync" (fun () ->
                  stats_str fc "server" "db_fingerprint"
                  = stats_str pc "server" "db_fingerprint");
              Alcotest.(check bool) "the follower resubscribed" true
                (stats_int fc "replication" "reconnects" >= 1
                || stats_int fc "replication" "stream_resyncs" >= 1);
              Alcotest.(check bool) "the drop was counted" true
                (stats_int pc "replication" "dropped" >= 1);
              Server.Client.close fc);
          Server.Client.close pc))

(* --journal-max-bytes compaction and the clean-shutdown checkpoint both
   preserve sequence positions while truncating entries. *)
let test_repl_checkpoint_compaction () =
  let dir = temp_dir () in
  let st = service_state ~journal_max_bytes:1 ~dir () in
  ignore (Server.State.record_install st (concrete "zlib"));
  ignore (Server.State.record_install st (concrete "hdf5"));
  let j =
    match st.Server.State.cfg.Server.State.journal with
    | Some j -> j
    | None -> Alcotest.fail "expected a journal"
  in
  Alcotest.(check int) "sequences survive compaction" 3
    (Server.Journal.next_seq j);
  Alcotest.(check int) "base advanced past the compacted entries" 3
    (Server.Journal.base_seq j);
  let live_fp = Pkg.Database.fingerprint (Server.State.db st) in
  Server.State.persist st;
  shutdown_state st;
  let path = Filename.concat dir "installed.db.journal" in
  Alcotest.(check int) "compacted journal holds no entries" 0
    (List.length (Server.Journal.replay path).Server.Journal.entries);
  let r =
    Server.State.recover ~db_path:(Filename.concat dir "installed.db")
      ~journal_path:path ()
  in
  Alcotest.(check int) "nothing left to replay" 0 r.Server.State.replayed;
  Alcotest.(check string) "database snapshot carries everything" live_fp
    (Pkg.Database.fingerprint r.Server.State.db0);
  let j2 = Server.Journal.open_ path in
  Alcotest.(check int) "reopened journal resumes the sequence" 3
    (Server.Journal.next_seq j2);
  Server.Journal.close j2

(* Journal v2 position plumbing: epochs, base sequences, raw appends and
   the catch-up tail — the primitives replication is built from. *)
let test_journal_v2_positions () =
  let dir = temp_dir () in
  let path = Filename.concat dir "installs.journal" in
  let s1 = concrete "zlib" in
  let j = Server.Journal.open_ path in
  Alcotest.(check int) "fresh epoch" 1 (Server.Journal.epoch j);
  Alcotest.(check int) "fresh base" 1 (Server.Journal.base_seq j);
  let seq = Server.Journal.append_intent j s1.C.spec in
  Server.Journal.append_commit j seq;
  (match Server.Journal.tail_from j 1 with
  | [ (1, il, cl) ] ->
    (match Server.Journal.parse il with
    | Some (`Intent (1, _)) -> ()
    | _ -> Alcotest.fail "tail intent line does not parse back");
    (match Server.Journal.parse cl with
    | Some (`Commit 1) -> ()
    | _ -> Alcotest.fail "tail commit line does not parse back")
  | t -> Alcotest.failf "unexpected tail of %d entries" (List.length t));
  Server.Journal.bump_epoch j 2;
  Alcotest.(check int) "epoch bumped" 2 (Server.Journal.epoch j);
  (* the follower side: mirror pre-rendered lines at an explicit seq *)
  Server.Journal.append_raw j ~seq:5
    [ Server.Journal.render_intent 5 s1.C.spec; Server.Journal.render_commit 5 ];
  Alcotest.(check int) "raw append advances the counter" 6
    (Server.Journal.next_seq j);
  Server.Journal.close j;
  let j2 = Server.Journal.open_ path in
  Alcotest.(check int) "epoch survives reopen" 2 (Server.Journal.epoch j2);
  Alcotest.(check int) "sequence survives reopen" 6 (Server.Journal.next_seq j2);
  Alcotest.(check int) "tail skips below from_seq" 1
    (List.length (Server.Journal.tail_from j2 2));
  Server.Journal.checkpoint j2;
  Alcotest.(check int) "checkpoint keeps the epoch" 2 (Server.Journal.epoch j2);
  Alcotest.(check int) "checkpoint advances the base" 6
    (Server.Journal.base_seq j2);
  Alcotest.(check int) "checkpointed tail is empty" 0
    (List.length (Server.Journal.tail_from j2 1));
  Server.Journal.set_position j2 ~epoch:5 ~base_seq:10;
  Server.Journal.close j2;
  let j3 = Server.Journal.open_ path in
  Alcotest.(check int) "adopted epoch survives reopen" 5
    (Server.Journal.epoch j3);
  Alcotest.(check int) "adopted base survives reopen" 10
    (Server.Journal.next_seq j3);
  Server.Journal.close j3

let () =
  Alcotest.run "service"
    [
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "stale rotation" `Quick test_journal_stale_rotation;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash-point differential" `Quick
            test_recovery_differential;
          Alcotest.test_case "concurrent installs" `Quick
            test_concurrent_installs;
        ] );
      ( "cache",
        [
          Alcotest.test_case "concurrent writers" `Quick
            test_cache_concurrent_writers;
        ] );
      ( "client",
        [
          Alcotest.test_case "reconnects" `Quick test_client_reconnects;
          Alcotest.test_case "recv timeout" `Quick test_client_recv_timeout;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "worker crash restart" `Quick
            test_daemon_worker_crash_restart;
          Alcotest.test_case "worker wedge quarantine" `Quick
            test_daemon_worker_wedge_quarantine;
          Alcotest.test_case "reply faults" `Quick test_daemon_reply_faults;
          Alcotest.test_case "enqueue deadline" `Quick
            test_daemon_enqueue_deadline;
          Alcotest.test_case "token bucket" `Quick test_daemon_token_bucket;
          Alcotest.test_case "graceful drain" `Quick test_daemon_graceful_drain;
        ] );
      ( "replication",
        [
          Alcotest.test_case "journal v2 positions" `Quick
            test_journal_v2_positions;
          Alcotest.test_case "checkpoint compaction" `Quick
            test_repl_checkpoint_compaction;
          Alcotest.test_case "follower equivalence + torn tail" `Quick
            test_repl_follower_equivalence;
          Alcotest.test_case "sync-ack durability" `Quick
            test_repl_sync_ack_durability;
          Alcotest.test_case "promotion" `Quick test_repl_promotion;
          Alcotest.test_case "stale primary fenced" `Quick
            test_repl_stale_primary_fenced;
          Alcotest.test_case "follower crash and gap resync" `Quick
            test_repl_follower_crash_and_gap;
        ] );
    ]
