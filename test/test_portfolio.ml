(* Domain pool, portfolio racing and the answer index.

   The portfolio contract under test (DESIGN.md "Parallel architecture"):
   racing N diverse configurations never changes the *cost vector* — the
   lexicographic optimum is unique, so every racer that completes proves the
   same one — and losers stop through cancellation, not by running to
   completion on their own. *)

module B = Asp.Budget

(* the weighted vertex cover of test_budget: two optimization levels, a
   unique optimal cost vector, small enough for Asp.Naive *)
let cover_src =
  {|node(1..5).
    edge(1,2). edge(2,3). edge(3,4). edge(4,5). edge(5,1). edge(1,3).
    { in(X) : node(X) }.
    :- edge(X,Y), not in(X), not in(Y).
    w(1,3). w(2,1). w(3,4). w(4,1). w(5,5).
    #minimize { W@2,X : in(X), w(X,W) }.
    #minimize { 1@1,X : in(X) }.|}

let cover = Asp.Parser.parse cover_src

let naive_models =
  List.map (List.sort Asp.Gatom.compare) (Asp.Naive.stable_models cover)

let is_stable_model answer =
  List.mem (List.sort Asp.Gatom.compare answer) naive_models

let unsat_src = {|{ p }. :- p. :- not p.|}

let choice_src = {|{ a; b; c }.|}

(* a sweep of small programs with unique optimal cost vectors: portfolio
   and sequential solving must agree on every one *)
let example_srcs =
  [
    ("cover", cover_src);
    ( "coloring",
      {|vtx(1..4).
        e(1,2). e(2,3). e(3,4). e(4,1). e(1,3).
        col(r). col(g). col(b).
        1 { color(V,C) : col(C) } 1 :- vtx(V).
        :- e(X,Y), color(X,C), color(Y,C).
        pay(b,2). pay(g,1). pay(r,0).
        #minimize { P,V : color(V,C), pay(C,P) }.|} );
    ( "reach",
      {|arc(a,b). arc(b,c). arc(a,c). arc(c,d).
        start(a).
        reach(X) :- start(X).
        reach(Y) :- reach(X), arc(X,Y).
        { keep(X,Y) : arc(X,Y) }.
        kept(Y) :- start(Y).
        kept(Y) :- kept(X), keep(X,Y).
        :- reach(X), not kept(X).
        #minimize { 1,X,Y : keep(X,Y) }.|} );
  ]

let sequential_costs config =
  match Asp.Solve.solve_program ~config cover with
  | Asp.Solve.Sat o ->
    Alcotest.(check bool) "sequential baseline optimal" true
      (o.Asp.Solve.quality = `Optimal);
    o.Asp.Solve.costs
  | _ -> Alcotest.fail "sequential baseline did not return SAT"

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map_order () =
  Asp.Pool.with_pool ~domains:4 (fun p ->
      Alcotest.(check int) "size" 4 (Asp.Pool.size p);
      let xs = List.init 50 Fun.id in
      Alcotest.(check (list int))
        "results in input order"
        (List.map (fun x -> x * x) xs)
        (Asp.Pool.map_list p (fun x -> x * x) xs))

exception Boom of int

let test_pool_exception () =
  Asp.Pool.with_pool ~domains:3 (fun p ->
      (match Asp.Pool.map_list p (fun x -> if x = 7 then raise (Boom x) else x) (List.init 20 Fun.id) with
      | _ -> Alcotest.fail "expected the job's exception to propagate"
      | exception Boom 7 -> ());
      (* the pool survives an exceptional batch *)
      Alcotest.(check (list int)) "pool still usable" [ 2; 4 ]
        (Asp.Pool.map_list p (fun x -> 2 * x) [ 1; 2 ]))

let test_pool_stress () =
  Asp.Pool.with_pool ~domains:4 (fun p ->
      for _round = 1 to 5 do
        let xs = List.init 200 Fun.id in
        let total =
          List.fold_left ( + ) 0 (Asp.Pool.map_list p (fun x -> x + 1) xs)
        in
        Alcotest.(check int) "round sum" (200 * 201 / 2) total
      done)

let test_pool_shutdown () =
  let p = Asp.Pool.create ~domains:2 in
  let f = Asp.Pool.submit p (fun () -> 41 + 1) in
  Asp.Pool.shutdown p;
  Asp.Pool.shutdown p (* idempotent *);
  Alcotest.(check int) "queued job drained before join" 42 (Asp.Pool.await f);
  match Asp.Pool.submit p (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Cancel tokens                                                       *)
(* ------------------------------------------------------------------ *)

let test_child_token () =
  let parent = B.token () in
  let child = B.child_token parent in
  Alcotest.(check bool) "fresh child clear" false (B.is_cancelled child);
  B.cancel child;
  Alcotest.(check bool) "child cancelled" true (B.is_cancelled child);
  Alcotest.(check bool) "parent untouched by child" false (B.is_cancelled parent);
  let parent2 = B.token () in
  let child2 = B.child_token parent2 in
  B.cancel parent2;
  Alcotest.(check bool) "parent cancellation reaches child" true
    (B.is_cancelled child2)

let test_sibling_budget () =
  let b = B.start { B.no_limits with B.conflicts = Some 3 } in
  let s = B.sibling b in
  (* exhaust the parent *)
  (match
     for _ = 1 to 10 do
       B.tick_conflict b
     done
   with
  | () -> Alcotest.fail "parent budget should exhaust"
  | exception B.Exhausted info ->
    Alcotest.(check bool) "parent reason" true (info.B.reason = B.Conflict_limit));
  (* the sibling has the same limit but fresh counters *)
  B.tick_conflict s;
  B.tick_conflict s;
  Alcotest.(check int) "sibling counts from zero" 2 (B.progress s).B.conflicts

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)
(* ------------------------------------------------------------------ *)

let test_portfolio_matches_sequential () =
  Asp.Pool.with_pool ~domains:3 (fun pool ->
      List.iter
        (fun strategy ->
          let config = Asp.Config.make ~strategy () in
          List.iter
            (fun (name, src) ->
              let prog = Asp.Parser.parse src in
              let baseline =
                match Asp.Solve.solve_program ~config prog with
                | Asp.Solve.Sat o -> o.Asp.Solve.costs
                | _ -> Alcotest.failf "%s: sequential solve not SAT" name
              in
              match Asp.Portfolio.solve_program ~pool ~config ~jobs:3 prog with
              | Asp.Solve.Sat o ->
                Alcotest.(check (list (pair int int)))
                  (name ^ ": portfolio cost vector equals sequential") baseline
                  o.Asp.Solve.costs;
                Alcotest.(check bool) (name ^ ": portfolio quality optimal")
                  true
                  (o.Asp.Solve.quality = `Optimal);
                if name = "cover" then
                  Alcotest.(check bool)
                    (name ^ ": portfolio answer is a stable model") true
                    (is_stable_model o.Asp.Solve.answer)
              | _ -> Alcotest.failf "%s: portfolio did not return SAT" name)
            example_srcs)
        [ Asp.Config.Bb; Asp.Config.Usc ])

let test_portfolio_unsat () =
  Asp.Pool.with_pool ~domains:2 (fun pool ->
      match
        Asp.Portfolio.solve_program ~pool ~jobs:2 (Asp.Parser.parse unsat_src)
      with
      | Asp.Solve.Unsat _ -> ()
      | _ -> Alcotest.fail "portfolio should prove UNSAT")

(* every racer either completes with the same proof or is stopped by the
   winner's cancellation — no loser survives with a divergent result *)
let test_racers_agree_or_cancelled () =
  let ground, _ = Asp.Grounder.ground cover in
  let config = Asp.Config.default in
  let baseline = sequential_costs config in
  Asp.Pool.with_pool ~domains:3 (fun pool ->
      let budget = B.start B.no_limits in
      let outcome =
        Asp.Portfolio.race ~pool
          ~racers:(Asp.Portfolio.racers ~config 3)
          ~budget ground
      in
      Alcotest.(check int) "every racer reported" 3
        (List.length outcome.Asp.Portfolio.attempts);
      List.iter
        (fun (rname, attempt) ->
          match attempt with
          | Asp.Portfolio.Model { costs; quality; _ } ->
            if quality = `Optimal then
              Alcotest.(check (list (pair int int)))
                (rname ^ ": completed racer proves the same optimum") baseline
                costs
          | Asp.Portfolio.Proved_unsat ->
            Alcotest.failf "%s: SAT instance reported UNSAT" rname
          | Asp.Portfolio.Gave_up info ->
            (* no declarative limits: the only way to give up is the
               winner's cancellation *)
            Alcotest.(check bool)
              (rname ^ ": loser was cancelled, not exhausted")
              true
              (info.B.reason = B.Cancelled)
          | Asp.Portfolio.Quarantined { violations } ->
            Alcotest.failf "%s: model failed independent verification: %s"
              rname
              (String.concat "; " violations))
        outcome.Asp.Portfolio.attempts;
      match outcome.Asp.Portfolio.attempt with
      | Asp.Portfolio.Model { costs; _ } ->
        Alcotest.(check (list (pair int int))) "winner costs" baseline costs
      | _ -> Alcotest.fail "race on a SAT instance must produce a model")

let test_race_cancelled_promptly () =
  let ground, _ = Asp.Grounder.ground cover in
  let tok = B.token () in
  B.cancel tok;
  Asp.Pool.with_pool ~domains:2 (fun pool ->
      let budget = B.start ~cancel:tok B.no_limits in
      let t0 = Unix.gettimeofday () in
      let outcome =
        Asp.Portfolio.race ~pool
          ~racers:(Asp.Portfolio.racers 2)
          ~budget ground
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      (match outcome.Asp.Portfolio.attempt with
      | Asp.Portfolio.Gave_up info ->
        Alcotest.(check bool) "reason is cancellation" true
          (info.B.reason = B.Cancelled)
      | _ -> Alcotest.fail "cancelled race must give up");
      Alcotest.(check bool) "cancelled race returns promptly" true
        (elapsed < 5.0))

(* ------------------------------------------------------------------ *)
(* Concretizer integration: portfolio and batch determinism            *)
(* ------------------------------------------------------------------ *)

let costs_of what = function
  | Concretize.Concretizer.Concrete s -> s.Concretize.Concretizer.costs
  | Concretize.Concretizer.Unsatisfiable _ -> Alcotest.failf "%s: UNSAT" what
  | Concretize.Concretizer.Interrupted _ -> Alcotest.failf "%s: interrupted" what

let test_concretizer_portfolio_determinism () =
  let repo = Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled 60) in
  let roots =
    match Pkg.Repo.package_names repo with
    | a :: b :: c :: _ -> [ a; b; c ]
    | _ -> Alcotest.fail "synthetic repository too small"
  in
  Asp.Pool.with_pool ~domains:2 (fun pool ->
      List.iter
        (fun name ->
          let root = [ Specs.Spec_parser.parse name ] in
          let seq =
            costs_of (name ^ " sequential")
              (Concretize.Concretizer.solve ~repo root)
          in
          let par =
            costs_of (name ^ " portfolio")
              (Concretize.Concretizer.solve ~pool ~racers:2 ~repo root)
          in
          Alcotest.(check (list (pair int int)))
            (name ^ ": portfolio concretization costs equal sequential") seq par)
        roots)

let test_solve_many () =
  let repo = Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled 60) in
  let names =
    List.filteri (fun i _ -> i < 6) (Pkg.Repo.package_names repo)
  in
  let jobs = List.map (fun n -> [ Specs.Spec_parser.parse n ]) names in
  let sequential =
    List.map2
      (fun n job -> costs_of (n ^ " sequential") (Concretize.Concretizer.solve ~repo job))
      names jobs
  in
  Asp.Pool.with_pool ~domains:3 (fun pool ->
      let batch = Concretize.Concretizer.solve_many ~pool ~repo jobs in
      Alcotest.(check int) "one result per job" (List.length jobs)
        (List.length batch);
      List.iteri
        (fun i r ->
          let name = List.nth names i in
          Alcotest.(check (list (pair int int)))
            (name ^ ": batch result in input order, costs equal sequential")
            (List.nth sequential i)
            (costs_of (name ^ " batch") r))
        batch)

(* ------------------------------------------------------------------ *)
(* Satellites: budgeted enumeration and the answer index               *)
(* ------------------------------------------------------------------ *)

let test_enumerate_limit () =
  let prog = Asp.Parser.parse choice_src in
  Alcotest.(check int) "all models" 8 (List.length (Asp.Solve.enumerate prog));
  Alcotest.(check int) "limit honoured" 3
    (List.length (Asp.Solve.enumerate ~limit:3 prog))

let test_enumerate_budgeted () =
  (* an exhausted budget must yield the models found so far, not raise *)
  let prog = Asp.Parser.parse choice_src in
  let expired = B.start { B.no_limits with B.wall = Some 0. } in
  let models = Asp.Solve.enumerate ~budget:expired prog in
  Alcotest.(check bool) "anytime enumeration" true (List.length models <= 8);
  let tight = B.start { B.no_limits with B.conflicts = Some 2 } in
  let some = Asp.Solve.enumerate ~budget:tight cover in
  Alcotest.(check bool) "budgeted enumeration returns a prefix" true
    (List.length some <= List.length naive_models);
  List.iter
    (fun m ->
      Alcotest.(check bool) "every enumerated model is stable" true
        (is_stable_model m))
    some

let test_answer_index () =
  match Asp.Solve.solve_program cover with
  | Asp.Solve.Sat o ->
    let answer = o.Asp.Solve.answer in
    (* holds/atoms_of agree with a linear scan of the answer *)
    List.iter
      (fun (a : Asp.Gatom.t) ->
        Alcotest.(check bool)
          (Format.asprintf "holds %a" Asp.Gatom.pp a)
          true
          (Asp.Solve.holds o a.Asp.Gatom.pred a.Asp.Gatom.args))
      answer;
    Alcotest.(check bool) "absent atom" false
      (Asp.Solve.holds o "in" [ Asp.Term.int 99 ]);
    Alcotest.(check bool) "absent predicate" true
      (Asp.Solve.atoms_of o "nonexistent" = []);
    let scan pred =
      List.filter_map
        (fun (a : Asp.Gatom.t) ->
          if String.equal a.Asp.Gatom.pred pred then Some a.Asp.Gatom.args
          else None)
        answer
    in
    List.iter
      (fun pred ->
        let indexed = Asp.Solve.atoms_of o pred in
        Alcotest.(check int)
          (pred ^ ": same cardinality as a linear scan")
          (List.length (scan pred))
          (List.length indexed);
        List.iter
          (fun args ->
            Alcotest.(check bool) (pred ^ ": scan atom is indexed") true
              (List.exists (fun a -> List.for_all2 Asp.Term.equal a args) indexed))
          (scan pred))
      [ "in"; "node"; "edge"; "w" ]
  | _ -> Alcotest.fail "cover solve did not return SAT"

let test_answer_dedup () =
  let a = Asp.Gatom.make "p" [ Asp.Term.int 1 ] in
  let b = Asp.Gatom.make "p" [ Asp.Term.int 2 ] in
  let idx = Asp.Answer.of_list [ a; b; a; a; b ] in
  Alcotest.(check int) "duplicates collapsed" 2 (Asp.Answer.size idx);
  Alcotest.(check int) "find lists each atom once" 2
    (List.length (Asp.Answer.find idx "p"));
  Alcotest.(check bool) "mem" true (Asp.Answer.mem idx a);
  Alcotest.(check bool) "holds" true
    (Asp.Answer.holds idx "p" [ Asp.Term.int 2 ]);
  Alcotest.(check bool) "not holds" false
    (Asp.Answer.holds idx "p" [ Asp.Term.int 3 ])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "portfolio"
    [
      ( "pool",
        [
          Alcotest.test_case "map_list order" `Quick test_pool_map_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "stress" `Quick test_pool_stress;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
        ] );
      ( "tokens",
        [
          Alcotest.test_case "child token" `Quick test_child_token;
          Alcotest.test_case "sibling budget" `Quick test_sibling_budget;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_portfolio_matches_sequential;
          Alcotest.test_case "proves unsat" `Quick test_portfolio_unsat;
          Alcotest.test_case "racers agree or cancelled" `Quick
            test_racers_agree_or_cancelled;
          Alcotest.test_case "cancelled race returns promptly" `Quick
            test_race_cancelled_promptly;
        ] );
      ( "concretizer",
        [
          Alcotest.test_case "portfolio determinism" `Quick
            test_concretizer_portfolio_determinism;
          Alcotest.test_case "solve_many" `Quick test_solve_many;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "enumerate limit" `Quick test_enumerate_limit;
          Alcotest.test_case "enumerate budgeted" `Quick test_enumerate_budgeted;
          Alcotest.test_case "answer index" `Quick test_answer_index;
          Alcotest.test_case "answer dedup" `Quick test_answer_dedup;
        ] );
    ]
