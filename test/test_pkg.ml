(* Tests for the package layer: the DSL, repositories, possible-dependency
   closures, the installed database, and the generators. *)

open Pkg

let repo = Repo_core.repo

(* ------------------------------------------------------------------ *)
(* Package DSL                                                         *)
(* ------------------------------------------------------------------ *)

let test_example_recipe () =
  (* the paper's Fig. 2 package is modeled verbatim *)
  let p = Repo.find_exn repo "example" in
  Alcotest.(check int) "two versions" 2 (List.length p.Package.versions);
  Alcotest.(check int) "four dependencies" 4 (List.length p.Package.dependencies);
  Alcotest.(check int) "two conflicts" 2 (List.length p.Package.conflicts);
  let bzip = Option.get (Package.find_variant p "bzip") in
  Alcotest.(check string) "bzip default" "true" bzip.Package.var_default;
  Alcotest.(check string) "preferred version" "1.1.0"
    (Specs.Version.to_string (Package.preferred_version p))

let test_when_conditions () =
  let p = Repo.find_exn repo "example" in
  let dep_on name =
    List.find
      (fun (d : Package.dependency) ->
        String.equal d.Package.dep_spec.Specs.Spec.cname name)
      p.Package.dependencies
  in
  (match (dep_on "bzip2").Package.dep_when with
  | Some w ->
    Alcotest.(check (list (pair string string))) "when +bzip"
      [ ("bzip", "true") ]
      w.Specs.Spec.aroot.Specs.Spec.cvariants
  | None -> Alcotest.fail "bzip2 dep should be conditional");
  match
    List.filter
      (fun (d : Package.dependency) ->
        String.equal d.Package.dep_spec.Specs.Spec.cname "zlib")
      p.Package.dependencies
  with
  | [ unconditional; versioned ] ->
    Alcotest.(check bool) "plain zlib dep" true (unconditional.Package.dep_when = None);
    Alcotest.(check (option string)) "zlib version constraint" (Some "1.2.8:")
      (Option.map Specs.Vrange.to_string versioned.Package.dep_spec.Specs.Spec.cversion)
  | _ -> Alcotest.fail "expected two zlib dependencies"

let test_anonymous_constraints () =
  let c = Package.parse_constraint ~self:"foo" "%intel" in
  Alcotest.(check string) "conflict self" "foo" c.Specs.Spec.cname;
  Alcotest.(check (option string)) "compiler" (Some "intel") c.Specs.Spec.ccompiler;
  let t = Package.parse_constraint ~self:"foo" "target=aarch64:" in
  Alcotest.(check (option string)) "family target" (Some "aarch64:") t.Specs.Spec.ctarget;
  let w = Package.parse_when ~self:"foo" "+openmp ^openblas" in
  Alcotest.(check (list (pair string string))) "self variant"
    [ ("openmp", "true") ]
    w.Specs.Spec.aroot.Specs.Spec.cvariants;
  Alcotest.(check int) "one ^dep" 1 (List.length w.Specs.Spec.adeps)

(* ------------------------------------------------------------------ *)
(* Repository                                                          *)
(* ------------------------------------------------------------------ *)

let test_virtuals () =
  Alcotest.(check bool) "mpi is virtual" true (Repo.is_virtual repo "mpi");
  Alcotest.(check bool) "zlib is not" false (Repo.is_virtual repo "zlib");
  let mpis = Repo.providers repo "mpi" in
  Alcotest.(check bool) "mpich preferred" true (List.hd mpis = "mpich");
  Alcotest.(check bool) "openmpi second" true (List.nth mpis 1 = "openmpi");
  Alcotest.(check bool) "mpilander provides mpi" true (List.mem "mpilander" mpis);
  Alcotest.(check int) "mpich weight" 0 (Repo.provider_weight repo ~virtual_:"mpi" ~provider:"mpich");
  Alcotest.(check bool) "blas providers include openblas" true
    (List.mem "openblas" (Repo.providers repo "blas"))

let test_possible_dependencies () =
  let pd name = List.length (Repo.possible_dependencies repo name) in
  Alcotest.(check int) "zlib has none" 0 (pd "zlib");
  Alcotest.(check bool) "m4 small" true (pd "m4" <= 2);
  (* the paper's observation: anything that can reach MPI has a large
     possible-dependency count; the clusters are separated by a gap *)
  Alcotest.(check bool) "hdf5 large (reaches mpi)" true (pd "hdf5" > 35);
  Alcotest.(check bool) "valgrind large (reaches mpi)" true (pd "valgrind" > 35);
  Alcotest.(check bool) "readline small" true (pd "readline" < 15);
  (* mpilander -> cmake -> qt -> valgrind -> mpi: the potential cycle makes
     the closure of cmake large too *)
  Alcotest.(check bool) "cmake pulled into the big cluster" true (pd "cmake" > 35)

let test_repo_errors () =
  (match Repo.make [ Package.make "dup" [ Package.version "1" ]; Package.make "dup" [] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate names accepted");
  Alcotest.(check (option string)) "unknown lookup" None
    (Option.map (fun (p : Package.t) -> p.Package.name) (Repo.find repo "no-such-pkg"))

(* ------------------------------------------------------------------ *)
(* Database                                                            *)
(* ------------------------------------------------------------------ *)

let mk_concrete root_deps =
  let node name version depends =
    {
      Specs.Spec.name;
      version = Specs.Version.of_string version;
      variants = [];
      compiler = Specs.Compiler.make "gcc" "11.2.0";
      flags = [];
      os = "rhel8";
      target = "skylake";
      depends;
    }
  in
  Specs.Spec.make_concrete ~root:"a"
    (node "a" "1.0" root_deps :: List.map (fun d -> node d "2.0" []) root_deps)

let test_database_roundtrip () =
  let db = Database.create () in
  let c = mk_concrete [ "b"; "c" ] in
  Database.add_concrete db c;
  Alcotest.(check int) "three records" 3 (Database.size db);
  let h = Specs.Spec.node_hash c "a" in
  (match Database.find db h with
  | Some r ->
    Alcotest.(check string) "record name" "a" r.Database.name;
    Alcotest.(check int) "two deps" 2 (List.length r.Database.deps);
    Alcotest.(check bool) "dag complete" true (Database.mem_dag db h)
  | None -> Alcotest.fail "root record missing");
  (* adding again is idempotent *)
  Database.add_concrete db c;
  Alcotest.(check int) "still three" 3 (Database.size db)

let test_database_filter () =
  let db = Database.create () in
  Database.add_concrete db (mk_concrete [ "b" ]);
  (* filter that drops the dependency must drop the dependent too *)
  let filtered = Database.filter db ~f:(fun r -> r.Database.name <> "b") in
  Alcotest.(check int) "closure-consistent filter" 0 (Database.size filtered);
  let keep_all = Database.filter db ~f:(fun _ -> true) in
  Alcotest.(check int) "identity filter" 2 (Database.size keep_all);
  (* slices are arena-sharing views: mutating through one is rejected... *)
  Alcotest.(check bool) "slice is a view" true (Database.is_view keep_all);
  (match Database.add_concrete keep_all (mk_concrete [ "c" ]) with
  | () -> Alcotest.fail "mutating a slice must raise"
  | exception Invalid_argument _ -> ());
  (* ...and installs into the parent stay invisible to the snapshot *)
  Database.add_concrete db (mk_concrete [ "b"; "c" ]);
  Alcotest.(check int) "parent grew" 4 (Database.size db);
  Alcotest.(check int) "snapshot unchanged" 2 (Database.size keep_all);
  List.iter2
    (fun (a : Database.record) (b : Database.record) ->
      Alcotest.(check string) "same records" a.Database.hash b.Database.hash)
    (Database.records keep_all)
    (List.filteri (fun i _ -> i < 2) (Database.records db))

(* ------------------------------------------------------------------ *)
(* Database persistence                                                *)
(* ------------------------------------------------------------------ *)

let temp_db_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spack-test-db-%d-%d" (Unix.getpid ()) !n)

let record_key (r : Database.record) =
  ( r.Database.hash,
    r.Database.name,
    Specs.Version.to_string r.Database.version,
    List.sort compare r.Database.variants,
    r.Database.compiler,
    r.Database.os,
    r.Database.target,
    List.sort compare r.Database.deps )

let facts_of db roots =
  (* Materialize mode renders the reuse facts as statements so the
     comparison still covers the installed records *)
  let f =
    Concretize.Facts.generate ~repo ~installed:db ~reuse_mode:`Materialize
      (List.map Specs.Spec_parser.parse roots)
  in
  List.map
    (Format.asprintf "%a" Asp.Ast.pp_statement)
    f.Concretize.Facts.statements

let test_database_save_load () =
  (* a realistically messy database: generated buildcache over core recipes *)
  let db = Buildcache_gen.quick ~repo ~roots:[ "hdf5"; "cmake" ] 60 in
  let path = temp_db_path () in
  Database.save db path;
  match Database.load path with
  | Error e -> Alcotest.failf "load failed: %s" (Database.load_error_to_string e)
  | Ok db' ->
    Alcotest.(check int) "same size" (Database.size db) (Database.size db');
    List.iter2
      (fun a b ->
        Alcotest.(check bool) "records identical" true (record_key a = record_key b))
      (Database.records db) (Database.records db');
    Alcotest.(check string) "same fingerprint" (Database.fingerprint db)
      (Database.fingerprint db');
    (* the reload is invisible to the solver: reuse facts are identical *)
    Alcotest.(check (list string)) "identical reuse facts"
      (facts_of db [ "hdf5" ]) (facts_of db' [ "hdf5" ]);
    (* saving the reload reproduces the file byte for byte *)
    let path' = temp_db_path () in
    Database.save db' path';
    let slurp p =
      let ic = open_in_bin p in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    Alcotest.(check string) "byte-identical re-save" (slurp path) (slurp path');
    Sys.remove path;
    Sys.remove path'

let test_database_load_errors () =
  let write path lines =
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  let path = temp_db_path () in
  let expect what lines check =
    write path lines;
    match Database.load path with
    | Ok _ -> Alcotest.failf "%s: expected a load error" what
    | Error e ->
      if not (check e) then
        Alcotest.failf "%s: wrong error %s" what (Database.load_error_to_string e)
  in
  (match Database.load (path ^ ".does-not-exist") with
  | Error (Database.No_such_file _) -> ()
  | _ -> Alcotest.fail "expected No_such_file");
  expect "foreign header" [ "something else"; "digest\tffff" ] (function
    | Database.Bad_header _ -> true
    | _ -> false);
  expect "stale version" [ "spack-installed-db v0"; "digest\tffff" ] (function
    | Database.Bad_header _ -> true
    | _ -> false);
  (* a valid database, truncated before the footer *)
  let db = Database.create () in
  Database.add_concrete db (mk_concrete [ "b" ]);
  Database.save db path;
  let ic = open_in path in
  let rec lines acc =
    match input_line ic with
    | l -> lines (l :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  let original = lines [] in
  expect "truncated"
    (List.filteri (fun i _ -> i < List.length original - 1) original)
    (function Database.Truncated -> true | _ -> false);
  (* flip a payload byte: the digest footer catches it *)
  expect "corrupt"
    (List.map
       (fun l ->
         if String.length l > 7 && String.sub l 0 6 = "record" then l ^ "x" else l)
       original)
    (function Database.Bad_digest -> true | _ -> false);
  (* internally consistent digest over a malformed body: typed Malformed *)
  let bogus = [ "spack-installed-db v1"; "gibberish line" ] in
  expect "malformed"
    (bogus @ [ "digest\t" ^ Specs.Spec.digest_strings bogus ])
    (function Database.Malformed _ -> true | _ -> false);
  Sys.remove path

let test_database_fingerprint () =
  let db = Database.create () in
  let fp0 = Database.fingerprint db in
  Database.add_concrete db (mk_concrete [ "b" ]);
  let fp1 = Database.fingerprint db in
  Alcotest.(check bool) "install changes the fingerprint" true (fp0 <> fp1);
  (* idempotent re-add keeps it stable *)
  Database.add_concrete db (mk_concrete [ "b" ]);
  Alcotest.(check string) "stable fingerprint" fp1 (Database.fingerprint db);
  let repo_fp = Repo.fingerprint repo in
  Alcotest.(check string) "repo fingerprint memoized" repo_fp (Repo.fingerprint repo)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_synth_repo () =
  let p = Pkg.Repo_synth.scaled 200 in
  let r = Pkg.Repo_synth.repo p in
  Alcotest.(check bool) "roughly 200 packages" true
    (abs (Repo.size r - 200) < 60);
  Alcotest.(check bool) "smpi virtual exists" true (Repo.is_virtual r "smpi");
  Alcotest.(check int) "provider count" p.Pkg.Repo_synth.n_mpi_providers
    (List.length (Repo.providers r "smpi"));
  (* deterministic in the seed *)
  let r2 = Pkg.Repo_synth.repo p in
  Alcotest.(check (list string)) "deterministic" (Repo.package_names r)
    (Repo.package_names r2);
  (* the bimodal closure structure must exist: some packages reach the hub
     closure, some don't *)
  let counts =
    List.map (fun n -> List.length (Repo.possible_dependencies r n)) (Repo.package_names r)
  in
  let big = List.filter (fun c -> c > 20) counts and small = List.filter (fun c -> c <= 20) counts in
  Alcotest.(check bool) "two clusters" true (List.length big > 10 && List.length small > 10)

let test_buildcache_gen () =
  let db = Database.create () in
  let st =
    Buildcache_gen.populate ~repo ~combos:Buildcache_gen.default_combos
      ~roots:[ "zlib"; "hdf5" ] db
  in
  Alcotest.(check bool) "cache populated" true (Database.size db > 50);
  (* the stats account for every expansion and agree with the cache size *)
  Alcotest.(check int) "added = size" (Database.size db)
    st.Buildcache_gen.added;
  Alcotest.(check bool) "expansions counted" true
    (st.Buildcache_gen.expanded > 0);
  Alcotest.(check bool) "duplicates deduped" true
    (st.Buildcache_gen.duplicates > 0);
  (* deterministic in the seed: same stats, same fingerprint *)
  let db2 = Database.create () in
  let st2 =
    Buildcache_gen.populate ~repo ~combos:Buildcache_gen.default_combos
      ~roots:[ "zlib"; "hdf5" ] db2
  in
  Alcotest.(check bool) "deterministic stats" true (st = st2);
  Alcotest.(check string) "deterministic contents" (Database.fingerprint db)
    (Database.fingerprint db2);
  (* scale_to reaches its target deterministically and reports honestly *)
  let big, bst = Buildcache_gen.scale_to ~repo ~roots:[ "zlib"; "hdf5" ] 200 in
  Alcotest.(check bool) "target reached" true (Database.size big >= 200);
  Alcotest.(check int) "scale_to added = size" (Database.size big)
    bst.Buildcache_gen.added;
  (* every record's dep closure is present *)
  List.iter
    (fun (r : Database.record) ->
      Alcotest.(check bool) ("complete " ^ r.Database.name) true
        (Database.mem_dag db r.Database.hash))
    (Database.records db);
  (* arch slice behaves like the paper's ppc64le group: strictly smaller *)
  let ppc =
    Database.filter db ~f:(fun r ->
        match Specs.Target.find r.Database.target with
        | Some t -> String.equal t.Specs.Target.family "ppc64le"
        | None -> false)
  in
  Alcotest.(check bool) "ppc slice nonempty" true (Database.size ppc > 0);
  Alcotest.(check bool) "ppc slice smaller" true (Database.size ppc < Database.size db)

let () =
  Alcotest.run "pkg"
    [
      ( "dsl",
        [
          Alcotest.test_case "fig2 example recipe" `Quick test_example_recipe;
          Alcotest.test_case "when conditions" `Quick test_when_conditions;
          Alcotest.test_case "anonymous constraints" `Quick test_anonymous_constraints;
        ] );
      ( "repo",
        [
          Alcotest.test_case "virtuals" `Quick test_virtuals;
          Alcotest.test_case "possible dependencies" `Quick test_possible_dependencies;
          Alcotest.test_case "errors" `Quick test_repo_errors;
        ] );
      ( "database",
        [
          Alcotest.test_case "roundtrip" `Quick test_database_roundtrip;
          Alcotest.test_case "filter" `Quick test_database_filter;
          Alcotest.test_case "save/load" `Quick test_database_save_load;
          Alcotest.test_case "load errors" `Quick test_database_load_errors;
          Alcotest.test_case "fingerprints" `Quick test_database_fingerprint;
        ] );
      ( "generators",
        [
          Alcotest.test_case "synthetic repo" `Quick test_synth_repo;
          Alcotest.test_case "buildcache" `Quick test_buildcache_gen;
        ] );
    ]
