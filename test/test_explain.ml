(* Unsat cores with provenance: Asp.Explain on curated programs (isolation
   and true minimality of the shrunken core) and Diagnose.explain_core on
   curated unsatisfiable concretizations (the reasons must name the
   conflicting package / constraint pair). *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- Asp-level cores ---------------------------------------------------- *)

(* Lines 4-6 are jointly unsatisfiable; the satisfiable constraint on line 7
   must not appear in the core. *)
let curated_lines =
  [| "{ a }."; "{ b }."; "{ e }."; ":- not a."; ":- a, not b."; ":- b."; ":- e." |]

let curated_src = String.concat "\n" (Array.to_list curated_lines) ^ "\n"

let explain_src src =
  let g, _ = Asp.Grounder.ground (Asp.Parser.parse src) in
  Asp.Explain.explain g

let core_lines src =
  match explain_src src with
  | Asp.Explain.Unsat_core { causes; minimal } ->
    ( List.sort_uniq compare
        (List.map
           (fun (c : Asp.Explain.cause) -> c.Asp.Explain.origin.Asp.Ground.o_line)
           causes),
      minimal )
  | Asp.Explain.Satisfiable -> Alcotest.fail "expected an unsat core, got SAT"
  | Asp.Explain.Exhausted _ -> Alcotest.fail "unlimited explain exhausted"

let test_core_isolates_culprits () =
  let lines, minimal = core_lines curated_src in
  Alcotest.(check bool) "shrinking completed" true minimal;
  Alcotest.(check (list int)) "exactly the three culprit constraints"
    [ 4; 5; 6 ] lines

(* dropping any single core member makes the program satisfiable: the core
   is a true MUS, not just jointly unsatisfiable *)
let test_core_is_minimal () =
  List.iter
    (fun drop ->
      let src =
        String.concat "\n"
          (List.filteri (fun i _ -> i <> drop - 1) (Array.to_list curated_lines))
      in
      match explain_src src with
      | Asp.Explain.Satisfiable -> ()
      | Asp.Explain.Unsat_core _ ->
        Alcotest.failf "dropping line %d should make the program SAT" drop
      | Asp.Explain.Exhausted _ -> Alcotest.fail "unlimited explain exhausted")
    [ 4; 5; 6 ]

(* the core members alone (non-constraint rules kept) stay unsatisfiable *)
let test_core_unsat_in_isolation () =
  let src =
    String.concat "\n"
      (List.filteri (fun i _ -> i <> 6) (Array.to_list curated_lines))
  in
  match explain_src src with
  | Asp.Explain.Unsat_core _ -> ()
  | _ -> Alcotest.fail "core constraints alone must stay UNSAT"

(* a conflict already found at grounding time (constraint body is all facts)
   is reported without any solving *)
let test_grounding_time_conflict () =
  match explain_src "a.\nb.\n:- a, b.\n" with
  | Asp.Explain.Unsat_core { causes; minimal } ->
    Alcotest.(check bool) "minimal" true minimal;
    Alcotest.(check (list int)) "the fact-level conflict" [ 3 ]
      (List.map
         (fun (c : Asp.Explain.cause) -> c.Asp.Explain.origin.Asp.Ground.o_line)
         causes)
  | _ -> Alcotest.fail "expected an unsat core"

let test_satisfiable_program () =
  match explain_src "{ a }.\n:- a.\n" with
  | Asp.Explain.Satisfiable -> ()
  | _ -> Alcotest.fail "satisfiable program must report Satisfiable"

(* --- concretizer-level explanations ------------------------------------- *)

let reasons_of ~repo spec =
  match Concretize.Concretizer.solve_spec ~explain:true ~repo spec with
  | Concretize.Concretizer.Unsatisfiable { reasons; _ } ->
    String.concat "\n" reasons
  | Concretize.Concretizer.Concrete _ -> Alcotest.fail "expected UNSAT, got a spec"
  | Concretize.Concretizer.Interrupted _ -> Alcotest.fail "expected UNSAT, interrupted"

let check_mentions what text needles =
  List.iter
    (fun needle ->
      if not (contains ~needle text) then
        Alcotest.failf "%s: expected %S in:\n%s" what needle text)
    needles

let test_explain_version_pin () =
  let text = reasons_of ~repo:Pkg.Repo_core.repo "hdf5@99.9" in
  check_mentions "version pin" text
    [ "hdf5"; "99.9"; "because the request asks for hdf5@99.9" ]

let test_explain_compiler_mismatch () =
  let text = reasons_of ~repo:Pkg.Repo_core.repo "zlib %gcc@99" in
  check_mentions "compiler mismatch" text
    [ "zlib"; "gcc"; "because the request asks for zlib%gcc@99" ]

(* conflicting version pins from two recipes: the classic diamond — the
   explanation must name both dependency conditions *)
let diamond_repo =
  Pkg.Repo.make
    [
      Pkg.Package.make "dep"
        [ Pkg.Package.version "1.0.8"; Pkg.Package.version "1.0.7" ];
      Pkg.Package.make "liba"
        [ Pkg.Package.version "1.0"; Pkg.Package.depends_on "dep@1.0.8:" ];
      Pkg.Package.make "libb"
        [ Pkg.Package.version "1.0"; Pkg.Package.depends_on "dep@:1.0.7" ];
      Pkg.Package.make "app"
        [
          Pkg.Package.version "1.0";
          Pkg.Package.depends_on "liba";
          Pkg.Package.depends_on "libb";
        ];
    ]

let test_explain_conflicting_pins () =
  let text = reasons_of ~repo:diamond_repo "app" in
  check_mentions "conflicting pins" text
    [ "liba depends on dep@1.0.8:"; "libb depends on dep@:1.0.7" ]

(* a declared conflict: the recipe's own message must surface *)
let conflict_repo =
  Pkg.Repo.make
    [
      Pkg.Package.make "broken"
        [
          Pkg.Package.version "1.0";
          Pkg.Package.conflicts ~msg:"does not build with gcc" "%gcc";
        ];
    ]

let test_explain_declared_conflict () =
  let text = reasons_of ~repo:conflict_repo "broken %gcc" in
  check_mentions "declared conflict" text
    [ "broken conflicts with broken%gcc"; "does not build with gcc" ]

(* a virtual whose only provider's [provides] condition can never hold *)
let providerless_repo =
  Pkg.Repo.make
    [
      Pkg.Package.make "fakempi"
        [ Pkg.Package.version "1.0"; Pkg.Package.provides ~when_:"@2.0" "mpi" ];
      Pkg.Package.make "mpi-user"
        [ Pkg.Package.version "1.0"; Pkg.Package.depends_on "mpi" ];
    ]

let test_explain_providerless_virtual () =
  let text = reasons_of ~repo:providerless_repo "mpi-user" in
  check_mentions "providerless virtual" text [ "mpi"; "fakempi" ]

(* --- Diagnose.explain satellites ---------------------------------------- *)

(* repeated nodes across the request must not repeat their diagnosis *)
let test_heuristics_deduped () =
  let root = Specs.Spec_parser.parse "hdf5@99.9" in
  let reasons =
    Concretize.Diagnose.explain ~env:Concretize.Facts.default_env
      ~repo:Pkg.Repo_core.repo [ root; root ]
  in
  Alcotest.(check int) "one reason for two identical roots" 1
    (List.length reasons);
  Alcotest.(check (list string)) "stable order, no duplicates" reasons
    (List.sort_uniq compare reasons)

let () =
  Alcotest.run "explain"
    [
      ( "asp cores",
        [
          Alcotest.test_case "isolates culprits" `Quick test_core_isolates_culprits;
          Alcotest.test_case "true minimality" `Quick test_core_is_minimal;
          Alcotest.test_case "unsat in isolation" `Quick
            test_core_unsat_in_isolation;
          Alcotest.test_case "grounding-time conflict" `Quick
            test_grounding_time_conflict;
          Alcotest.test_case "satisfiable program" `Quick test_satisfiable_program;
        ] );
      ( "concretizer",
        [
          Alcotest.test_case "version pin" `Quick test_explain_version_pin;
          Alcotest.test_case "compiler mismatch" `Quick
            test_explain_compiler_mismatch;
          Alcotest.test_case "conflicting pins" `Quick
            test_explain_conflicting_pins;
          Alcotest.test_case "declared conflict" `Quick
            test_explain_declared_conflict;
          Alcotest.test_case "providerless virtual" `Quick
            test_explain_providerless_virtual;
        ] );
      ( "heuristics",
        [ Alcotest.test_case "deduped" `Quick test_heuristics_deduped ] );
    ]
