(* Differential tests for the ground-program substrate: every request in a
   randomized stream (with interleaved installs) is solved twice — once
   incrementally through a shared substrate (frozen base + extension,
   install rebase) and once from scratch — and the two answers must agree
   exactly: same cost vector, same [verified] flag, same concrete spec. *)

open Concretize

let repo = Pkg.Repo_core.repo

let render = function
  | Concretizer.Concrete s ->
    Format.asprintf "concrete %a | costs %s | verified %b"
      Specs.Spec.pp_concrete s.Concretizer.spec
      (String.concat ","
         (List.map
            (fun (p, v) -> Printf.sprintf "%d@%d" v p)
            s.Concretizer.costs))
      s.Concretizer.verified
  | Concretizer.Unsatisfiable _ -> "unsat"
  | Concretizer.Interrupted _ -> "interrupted"

let solve_both ?installed ~substrate spec =
  let roots = [ Specs.Spec_parser.parse spec ] in
  let inc = Concretizer.solve ?installed ~substrate ~repo roots in
  let scr = Concretizer.solve ?installed ~repo roots in
  Alcotest.(check string) ("differential: " ^ spec) (render scr) (render inc);
  inc

(* The request pool deliberately repeats name skeletons under different
   constraints: every group shares one substrate base, so the stream
   exercises the warm extension path, not just base builds. *)
let requests =
  [|
    "hdf5";
    "hdf5+szip";
    "hdf5@1.10:";
    "hdf5~mpi";
    "zlib";
    "zlib@1.2:";
    "cmake";
    "fftw";
    "fftw precision=float";
    "gromacs";
  |]

let test_differential_stream () =
  let substrate = Substrate.create () in
  let db = Pkg.Database.create () in
  let rng = Random.State.make [| 0x5eed |] in
  let installed_something = ref false in
  for step = 1 to 24 do
    let spec = requests.(Random.State.int rng (Array.length requests)) in
    let installed = if Pkg.Database.is_empty db then None else Some db in
    let r = solve_both ?installed ~substrate spec in
    (* interleave installs: record some answers into the DB and push the
       delta through the substrate instead of discarding it *)
    match r with
    | Concretizer.Concrete s when step mod 7 = 0 ->
      Pkg.Database.add_concrete db s.Concretizer.spec;
      Substrate.on_install substrate ~repo ~db;
      installed_something := true
    | _ -> ()
  done;
  Alcotest.(check bool) "installs happened" true !installed_something;
  let c = Substrate.counters substrate in
  Alcotest.(check bool) "bases were reused"
    true
    (c.Substrate.extensions > c.Substrate.base_builds);
  Alcotest.(check bool) "installs reached the substrate" true
    (c.Substrate.delta_applies + c.Substrate.drops > 0);
  Alcotest.(check int) "no fallbacks" 0 c.Substrate.fallbacks

let test_extension_timings () =
  let substrate = Substrate.create () in
  let phases r =
    match r with
    | Concretizer.Concrete s -> s.Concretizer.phases
    | _ -> Alcotest.fail "expected a concrete result"
  in
  let cold =
    phases (Concretizer.solve ~substrate ~repo [ Specs.Spec_parser.parse "hdf5" ])
  in
  Alcotest.(check bool) "cold solve builds a base" true
    (cold.Concretizer.ground_base_time > 0.);
  let warm =
    phases
      (Concretizer.solve ~substrate ~repo
         [ Specs.Spec_parser.parse "hdf5+szip" ])
  in
  Alcotest.(check bool) "warm solve reuses the base" true
    (warm.Concretizer.ground_base_time = 0.
    && warm.Concretizer.ground_extend_time > 0.);
  let c = Substrate.counters substrate in
  Alcotest.(check int) "one base" 1 c.Substrate.base_builds;
  Alcotest.(check int) "two extensions" 2 c.Substrate.extensions

(* Portfolio racers must share the one grounded extended program: the
   grounding happens before the race, so a racers=2 solve extends the
   substrate exactly once (and agrees with the sequential answer). *)
let test_portfolio_shares_extension () =
  Asp.Pool.with_pool ~domains:2 (fun pool ->
      let substrate = Substrate.create () in
      let roots = [ Specs.Spec_parser.parse "hdf5+szip" ] in
      let seq = Concretizer.solve ~repo roots in
      let before = Substrate.counters substrate in
      let raced =
        Concretizer.solve ~pool ~racers:2 ~substrate ~repo roots
      in
      let after = Substrate.counters substrate in
      Alcotest.(check string) "portfolio agrees with sequential" (render seq)
        (render raced);
      Alcotest.(check int) "exactly one extension for the whole race" 1
        (after.Substrate.extensions - before.Substrate.extensions))

(* Batch solving across a pool shares the substrate registry between
   domains: one base, one extension per unique request. *)
let test_batch_shares_substrate () =
  Asp.Pool.with_pool ~domains:2 (fun pool ->
      let substrate = Substrate.create () in
      (* four jobs, three unique — solve_many dedupes the repeat before
         dispatch, so the substrate sees three extensions *)
      let jobs =
        List.map
          (fun s -> [ Specs.Spec_parser.parse s ])
          [ "hdf5"; "hdf5+szip"; "hdf5@1.10:"; "hdf5" ]
      in
      let rs = Concretizer.solve_many ~pool ~substrate ~repo jobs in
      List.iter
        (function
          | Concretizer.Concrete _ -> ()
          | _ -> Alcotest.fail "batch job failed")
        rs;
      let c = Substrate.counters substrate in
      Alcotest.(check int) "one base for the skeleton" 1 c.Substrate.base_builds;
      Alcotest.(check int) "every unique request extended it" 3 c.Substrate.extensions)

(* Narrowed install invalidation: the solve-cache key digests only the
   reuse-visible slice of the DB, so installing a package outside a
   request's closure leaves that request's key — and its cached answer —
   intact, while requests that can see the install are re-keyed. *)
let test_request_key_narrowing () =
  let db = Pkg.Database.create () in
  let roots s = [ Specs.Spec_parser.parse s ] in
  (* a root whose closure excludes zlib (verified, not assumed) *)
  let unrelated =
    match
      List.find_opt
        (fun s ->
          not (List.mem "zlib" (Facts.closure_packages ~repo (roots s))))
        [ "bzip2"; "autoconf"; "fftw"; "openblas" ]
    with
    | Some s -> s
    | None -> Alcotest.fail "no zlib-free root in the fixture repo"
  in
  let key s = Concretizer.request_key ~installed:db ~repo (roots s) in
  let unrelated_before = key unrelated and zlib_before = key "zlib" in
  (match Concretizer.solve ~installed:db ~repo (roots "zlib") with
  | Concretizer.Concrete s -> Pkg.Database.add_concrete db s.Concretizer.spec
  | _ -> Alcotest.fail "zlib solve failed");
  Alcotest.(check string) "unrelated key survives the install"
    unrelated_before (key unrelated);
  Alcotest.(check bool) "observing key is re-keyed" true
    (zlib_before <> key "zlib")

let test_eviction () =
  let substrate = Substrate.create ~capacity:1 () in
  let solve s =
    ignore (Concretizer.solve ~substrate ~repo [ Specs.Spec_parser.parse s ])
  in
  solve "zlib";
  solve "cmake";
  solve "zlib";
  let c = Substrate.counters substrate in
  Alcotest.(check int) "capacity 1 holds one base" 1 (Substrate.size substrate);
  Alcotest.(check bool) "eviction forced a rebuild" true
    (c.Substrate.base_builds = 3 && c.Substrate.evictions = 2)

let () =
  Alcotest.run "substrate"
    [
      ( "differential",
        [
          Alcotest.test_case "randomized stream with installs" `Slow
            test_differential_stream;
        ] );
      ( "phases",
        [ Alcotest.test_case "base/extend timings" `Quick test_extension_timings ] );
      ( "sharing",
        [
          Alcotest.test_case "portfolio racers share one extension" `Slow
            test_portfolio_shares_extension;
          Alcotest.test_case "batch jobs share the registry" `Slow
            test_batch_shares_substrate;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "narrowed request keys" `Quick
            test_request_key_narrowing;
        ] );
      ( "lru",
        [ Alcotest.test_case "capacity eviction" `Quick test_eviction ] );
    ]
