(* Tests for the specs layer: versions, ranges, targets, compilers, specs,
   the sigil parser (Table I), and DAG hashing. *)

open Specs

let v = Version.of_string

(* ------------------------------------------------------------------ *)
(* Versions                                                            *)
(* ------------------------------------------------------------------ *)

let test_version_order () =
  let lt a b = Alcotest.(check bool) (a ^ " < " ^ b) true (Version.compare (v a) (v b) < 0) in
  lt "1.9" "1.10";
  lt "1.2" "1.2.1";
  lt "1.10.2" "1.13.1";
  lt "3.1" "4.0.2";
  lt "0.3.18" "0.3.20";
  lt "2020.3.279" "2021.1";
  lt "1.0-rc1" "1.0.1";
  Alcotest.(check bool) "equal" true (Version.equal (v "1.2.0") (v "1.2.0"))

let test_version_prefix () =
  Alcotest.(check bool) "1.10 matches 1.10.2" true
    (Version.satisfies_prefix ~prefix:(v "1.10") (v "1.10.2"));
  Alcotest.(check bool) "1.1 does not match 1.10.2" false
    (Version.satisfies_prefix ~prefix:(v "1.1") (v "1.10.2"))

let test_vrange () =
  let sat con ver expect =
    Alcotest.(check bool)
      (Printf.sprintf "%s satisfies %s" ver con)
      expect
      (Vrange.satisfies (Vrange.of_string con) (v ver))
  in
  sat "1.0.7:" "1.0.8" true;
  sat "1.0.7:" "1.0.7" true;
  sat "1.0.7:" "1.0.6" false;
  sat ":1.5" "1.5.2" true;
  (* prefix-inclusive upper bound *)
  sat ":1.5" "1.6" false;
  sat "1.2:1.5" "1.3.9" true;
  sat "1.2:1.5" "1.1" false;
  sat "1.2.8" "1.2.8" true;
  sat "1.2.8" "1.2.9" false;
  sat "1.2" "1.2.11" true;
  (* single version = prefix semantics *)
  sat "1.2,2.0:" "2.4" true;
  sat "1.2,2.0:" "1.5" false

let test_vrange_intersects () =
  let inter a b expect =
    Alcotest.(check bool)
      (Printf.sprintf "%s /\\ %s" a b)
      expect
      (Vrange.intersects (Vrange.of_string a) (Vrange.of_string b))
  in
  inter "1.0:2.0" "1.5:" true;
  inter ":1.0" "2.0:" false;
  inter "1.2.8" "1.2:1.3" true

(* ------------------------------------------------------------------ *)
(* Targets / compilers                                                 *)
(* ------------------------------------------------------------------ *)

let test_target_lattice () =
  let sky = Target.find_exn "skylake" in
  Alcotest.(check string) "family" "x86_64" sky.Target.family;
  Alcotest.(check bool) "descends from x86_64" true (Target.is_descendant_of sky "x86_64");
  Alcotest.(check bool) "descends from haswell" true (Target.is_descendant_of sky "haswell");
  Alcotest.(check bool) "not from icelake" false (Target.is_descendant_of sky "icelake");
  let ice = Target.find_exn "icelake" in
  Alcotest.(check int) "icelake is best x86" 0 (Target.weight ice);
  Alcotest.(check bool) "generic is worst" true (Target.weight (Target.find_exn "x86_64") > Target.weight sky)

let test_compiler_support () =
  (* the paper's example: gcc@4.8.3 cannot target skylake *)
  let old_gcc = Compiler.make "gcc" "4.8.3" in
  let new_gcc = Compiler.make "gcc" "11.2.0" in
  let sky = Target.find_exn "skylake" in
  Alcotest.(check bool) "gcc 4.8 can't do skylake" false (Compiler.supports_target old_gcc sky);
  Alcotest.(check bool) "gcc 11 can" true (Compiler.supports_target new_gcc sky);
  Alcotest.(check bool) "gcc 4.8 can do generic" true
    (Compiler.supports_target old_gcc (Target.find_exn "x86_64"));
  Alcotest.(check bool) "xl can't do x86" false
    (Compiler.supports_target (Compiler.make "xl" "16.1.1") sky)

(* ------------------------------------------------------------------ *)
(* Spec parser (Table I)                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_sigils () =
  let a = Spec_parser.parse "hdf5@1.10.2+mpi~szip api=v110 %gcc@10.3.1 os=rhel8 target=skylake" in
  let r = a.Spec.aroot in
  Alcotest.(check string) "name" "hdf5" r.Spec.cname;
  Alcotest.(check (option string)) "version" (Some "1.10.2")
    (Option.map Vrange.to_string r.Spec.cversion);
  Alcotest.(check (list (pair string string))) "variants"
    [ ("api", "v110"); ("mpi", "true"); ("szip", "false") ]
    r.Spec.cvariants;
  Alcotest.(check (option string)) "compiler" (Some "gcc") r.Spec.ccompiler;
  Alcotest.(check (option string)) "compiler version" (Some "10.3.1")
    (Option.map Vrange.to_string r.Spec.ccompiler_version);
  Alcotest.(check (option string)) "os" (Some "rhel8") r.Spec.cos;
  Alcotest.(check (option string)) "target" (Some "skylake") r.Spec.ctarget

let test_parse_deps () =
  (* the paper's example spec *)
  let a = Spec_parser.parse "hdf5@1.10.2 ^zlib%gcc ^cmake target=aarch64" in
  Alcotest.(check int) "two deps" 2 (List.length a.Spec.adeps);
  let zlib = List.nth a.Spec.adeps 0 and cmake = List.nth a.Spec.adeps 1 in
  Alcotest.(check string) "dep1" "zlib" zlib.Spec.cname;
  Alcotest.(check (option string)) "dep1 compiler" (Some "gcc") zlib.Spec.ccompiler;
  Alcotest.(check (option string)) "dep2 target" (Some "aarch64") cmake.Spec.ctarget

let test_parse_arch_triple () =
  let a = Spec_parser.parse "zlib arch=linux-centos8-skylake" in
  Alcotest.(check (option string)) "os" (Some "centos8") a.Spec.aroot.Spec.cos;
  Alcotest.(check (option string)) "target" (Some "skylake") a.Spec.aroot.Spec.ctarget

let test_parse_chained_variants () =
  let a = Spec_parser.parse "pkg+a~b+c" in
  Alcotest.(check (list (pair string string))) "chained"
    [ ("a", "true"); ("b", "false"); ("c", "true") ]
    a.Spec.aroot.Spec.cvariants

let test_parse_flags () =
  let a = Spec_parser.parse {|hdf5 cflags="-O3 -g" ldflags=-static|} in
  Alcotest.(check (list (pair string string))) "flags"
    [ ("cflags", "-O3 -g"); ("ldflags", "-static") ]
    a.Spec.aroot.Spec.cflags;
  (* flags render quoted and roundtrip *)
  let printed = Spec.abstract_to_string a in
  Alcotest.(check (list (pair string string))) "roundtrip"
    a.Spec.aroot.Spec.cflags
    (Spec_parser.parse printed).Spec.aroot.Spec.cflags

let test_parse_errors () =
  List.iter
    (fun s ->
      match Spec_parser.parse s with
      | exception Spec_parser.Error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" s)
    [ ""; "@1.2"; "pkg@"; "pkg%"; "pkg+"; "pkg os="; "pkg arch=linux" ]

let test_error_positions () =
  (match Spec_parser.parse "hdf5 ^zlib@" with
  | exception Spec_parser.Error e ->
    (* the caret points into the original multi-node string, not the piece *)
    Alcotest.(check string) "full text kept" "hdf5 ^zlib@" e.Spec_parser.text;
    Alcotest.(check int) "position after the dangling @" 11 e.Spec_parser.pos;
    let rendered = Spec_parser.error_to_string e in
    Alcotest.(check bool) "rendered message carries a caret" true
      (String.contains rendered '^')
  | _ -> Alcotest.fail "expected parse error");
  match Spec_parser.parse "pkg os=" with
  | exception Spec_parser.Error e ->
    Alcotest.(check int) "position of the missing value" 7 e.Spec_parser.pos
  | _ -> Alcotest.fail "expected parse error"

let test_roundtrip () =
  let specs =
    [
      "hdf5@1.10.2+mpi%gcc@10.3.1 os=rhel8 target=skylake";
      "example~bzip ^zlib@1.2.8:";
      "hpctoolkit ^mpich";
    ]
  in
  List.iter
    (fun s ->
      let a = Spec_parser.parse s in
      let printed = Spec.abstract_to_string a in
      let a2 = Spec_parser.parse printed in
      Alcotest.(check string) ("roundtrip " ^ s) printed (Spec.abstract_to_string a2))
    specs

(* ------------------------------------------------------------------ *)
(* Concrete specs and hashing                                          *)
(* ------------------------------------------------------------------ *)

let node ?(variants = []) ?(depends = []) name version =
  {
    Spec.name;
    version = v version;
    variants;
    compiler = Compiler.make "gcc" "11.2.0";
    flags = [];
    os = "rhel8";
    target = "skylake";
    depends;
  }

let test_concrete_dag () =
  let c =
    Spec.make_concrete ~root:"a"
      [ node "a" "1.0" ~depends:[ "b"; "c" ]; node "b" "2.0" ~depends:[ "c" ]; node "c" "3.0" ]
  in
  let order = List.map (fun (n : Spec.concrete_node) -> n.Spec.name) (Spec.concrete_nodes c) in
  Alcotest.(check string) "root first" "a" (List.hd order);
  Alcotest.(check int) "three nodes" 3 (List.length order)

let test_concrete_validation () =
  (match Spec.make_concrete ~root:"a" [ node "a" "1.0" ~depends:[ "ghost" ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dangling edge accepted");
  match
    Spec.make_concrete ~root:"a"
      [ node "a" "1.0" ~depends:[ "b" ]; node "b" "1.0" ~depends:[ "a" ] ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cycle accepted"

let test_hash_stability () =
  let c1 =
    Spec.make_concrete ~root:"a" [ node "a" "1.0" ~depends:[ "b" ]; node "b" "2.0" ]
  in
  let c2 =
    Spec.make_concrete ~root:"a" [ node "b" "2.0"; node "a" "1.0" ~depends:[ "b" ] ]
  in
  Alcotest.(check string) "order-independent" (Spec.node_hash c1 "a") (Spec.node_hash c2 "a");
  let c3 =
    Spec.make_concrete ~root:"a" [ node "a" "1.0" ~depends:[ "b" ]; node "b" "2.1" ]
  in
  Alcotest.(check bool) "dep change changes root hash" false
    (String.equal (Spec.node_hash c1 "a") (Spec.node_hash c3 "a"));
  Alcotest.(check bool) "but b hashes differ too" false
    (String.equal (Spec.node_hash c1 "b") (Spec.node_hash c3 "b"))

let test_node_satisfies () =
  let n = node "hdf5" "1.10.2" ~variants:[ ("mpi", "true") ] in
  let sat s expect =
    Alcotest.(check bool) s expect
      (Spec.node_satisfies n (Spec_parser.parse s).Spec.aroot)
  in
  sat "hdf5@1.10" true;
  sat "hdf5@1.11:" false;
  sat "hdf5+mpi" true;
  sat "hdf5~mpi" false;
  sat "hdf5%gcc" true;
  sat "hdf5%clang" false;
  sat "hdf5 target=skylake" true;
  sat "hdf5 target=x86_64:" true;
  sat "hdf5 target=aarch64:" false

(* ------------------------------------------------------------------ *)
(* Canonical digests of abstract specs                                 *)
(* ------------------------------------------------------------------ *)

let digest s = Spec.abstract_digest (Spec_parser.parse s)

let test_abstract_digest_spellings () =
  let same a b = Alcotest.(check string) (a ^ " == " ^ b) (digest a) (digest b) in
  (* dependency order is irrelevant *)
  same "hdf5@1.10.2+mpi ^zlib@1.2.8 ^cmake" "hdf5@1.10.2+mpi ^cmake ^zlib@1.2.8";
  (* variant order is irrelevant, on roots and on dependencies *)
  same "hdf5+mpi~szip" "hdf5~szip+mpi";
  same "hdf5 ^mpich+fortran device=ch4" "hdf5 ^mpich device=ch4+fortran";
  (* sigil order is irrelevant *)
  same "hdf5@1.10.2+mpi%gcc@10.3.1" "hdf5+mpi%gcc@10.3.1@1.10.2";
  (* compiler-flag order is irrelevant *)
  same "zlib cflags=-O2 cppflags=-g" "zlib cppflags=-g cflags=-O2";
  (* duplicate ^dep constraints merge into one node *)
  same "hdf5 ^zlib@1.2.8 ^zlib+shared" "hdf5 ^zlib@1.2.8+shared"

let test_abstract_digest_distinguishes () =
  let diff a b =
    if String.equal (digest a) (digest b) then
      Alcotest.failf "%s and %s should digest differently" a b
  in
  diff "hdf5@1.10.2" "hdf5@1.10.3";
  diff "hdf5+mpi" "hdf5~mpi";
  diff "hdf5" "hdf5 ^zlib";
  diff "hdf5 ^zlib@1.2.8" "hdf5 ^zlib@1.2.9";
  diff "hdf5 os=rhel8" "hdf5 os=centos7";
  (* a constraint on the root is not a constraint on a dependency *)
  diff "hdf5+mpi ^zlib" "hdf5 ^zlib+mpi"

(* property: parse/print roundtrip on generated abstract specs *)
let gen_abstract =
  let open QCheck in
  let name = Gen.oneofl [ "hdf5"; "zlib"; "mpich"; "pkg-a"; "x_y" ] in
  let gnode =
    Gen.map2
      (fun n ver ->
        { (Spec.empty_node n) with Spec.cversion = Option.map Vrange.of_string ver })
      name
      (Gen.opt (Gen.oneofl [ "1.2"; "1.0:"; ":2.0"; "1.2:1.5" ]))
  in
  make
    ~print:Spec.abstract_to_string
    (Gen.map2 (fun r deps -> { Spec.aroot = r; adeps = deps }) gnode
       (Gen.list_size (Gen.int_range 0 3) gnode))

let prop_spec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"abstract spec print/parse roundtrip" gen_abstract
    (fun a ->
      let s = Spec.abstract_to_string a in
      String.equal s (Spec.abstract_to_string (Spec_parser.parse s)))

let gen_version =
  QCheck.make ~print:Fun.id
    QCheck.Gen.(
      map (String.concat ".")
        (list_size (int_range 1 4) (map string_of_int (int_range 0 30))))

let gen_range =
  QCheck.make ~print:Fun.id
    QCheck.Gen.(
      let ver = map (String.concat ".") (list_size (int_range 1 3) (map string_of_int (int_range 0 9))) in
      oneof
        [
          ver;
          map (fun v -> v ^ ":") ver;
          map (fun v -> ":" ^ v) ver;
          map2 (fun a b -> a ^ ":" ^ b) ver ver;
        ])

let prop_satisfies_implies_intersects =
  QCheck.Test.make ~count:300 ~name:"satisfies implies intersects with the exact range"
    (QCheck.pair gen_range gen_version) (fun (r, ver) ->
      let range = Vrange.of_string r in
      let version = v ver in
      (not (Vrange.satisfies range version))
      || Vrange.intersects range (Vrange.exactly version))

let prop_any_satisfies_everything =
  QCheck.Test.make ~count:100 ~name:"the universal range admits every version" gen_version
    (fun ver -> Vrange.satisfies Vrange.any (v ver))

let prop_version_total_order =
  QCheck.Test.make ~count:300 ~name:"version compare is a total order"
    (QCheck.triple gen_version gen_version gen_version) (fun (a, b, c) ->
      let va = v a and vb = v b and vc = v c in
      let sgn x = compare x 0 in
      sgn (Version.compare va vb) = -sgn (Version.compare vb va)
      && ((not (Version.compare va vb <= 0 && Version.compare vb vc <= 0))
         || Version.compare va vc <= 0))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_spec_roundtrip;
        prop_version_total_order;
        prop_satisfies_implies_intersects;
        prop_any_satisfies_everything;
      ]
  in
  Alcotest.run "specs"
    [
      ( "versions",
        [
          Alcotest.test_case "ordering" `Quick test_version_order;
          Alcotest.test_case "prefix" `Quick test_version_prefix;
          Alcotest.test_case "ranges" `Quick test_vrange;
          Alcotest.test_case "intersection" `Quick test_vrange_intersects;
        ] );
      ( "targets",
        [
          Alcotest.test_case "lattice" `Quick test_target_lattice;
          Alcotest.test_case "compiler support" `Quick test_compiler_support;
        ] );
      ( "parser",
        [
          Alcotest.test_case "sigils" `Quick test_parse_sigils;
          Alcotest.test_case "dependencies" `Quick test_parse_deps;
          Alcotest.test_case "arch triple" `Quick test_parse_arch_triple;
          Alcotest.test_case "chained variants" `Quick test_parse_chained_variants;
          Alcotest.test_case "compiler flags" `Quick test_parse_flags;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
      ( "digest",
        [
          Alcotest.test_case "spelling invariance" `Quick
            test_abstract_digest_spellings;
          Alcotest.test_case "constraint sensitivity" `Quick
            test_abstract_digest_distinguishes;
        ] );
      ( "concrete",
        [
          Alcotest.test_case "dag" `Quick test_concrete_dag;
          Alcotest.test_case "validation" `Quick test_concrete_validation;
          Alcotest.test_case "hash stability" `Quick test_hash_stability;
          Alcotest.test_case "satisfies" `Quick test_node_satisfies;
        ] );
      ("properties", props);
    ]
