let () =
  let repo = Pkg.Repo_core.repo in
  let facts = Concretize.Facts.generate ~repo [ Specs.Spec_parser.parse "slepc" ] in
  let lp = Asp.Parser.parse Concretize.Logic_program.text in
  let ground, _ = Asp.Grounder.ground (lp @ facts.Concretize.Facts.statements) in
  let t = Asp.Translate.translate ground in
  Printf.printf "tight=%b vars=%d\n%!" t.Asp.Translate.tight (Asp.Sat.num_vars t.Asp.Translate.sat);
  let n_checks = ref 0 and check_time = ref 0.0 in
  let on_model sat =
    ignore sat;
    incr n_checks;
    let t0 = Unix.gettimeofday () in
    let r = Asp.Stable.check t in
    check_time := !check_time +. (Unix.gettimeofday () -. t0);
    r
  in
  let t0 = Unix.gettimeofday () in
  (match Asp.Optimize.run t ~on_model with
  | None -> print_endline "UNSAT"
  | Some o ->
    Printf.printf "solved in %.2fs; %d model-candidates, stable-checks %.2fs; costs nonzero: %s\n"
      (Unix.gettimeofday () -. t0) !n_checks !check_time
      (String.concat " "
         (List.filter_map
            (fun (p, v) -> if v <> 0 then Some (Printf.sprintf "%d@%d" v p) else None)
            o.Asp.Optimize.costs)))
