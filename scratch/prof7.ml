let () =
  let repo = Pkg.Repo_core.repo in
  List.iter
    (fun spec ->
      match Concretize.Concretizer.solve_spec ~repo spec with
      | Concretize.Concretizer.Concrete s ->
        let vs = Concretize.Validate.check ~repo s.Concretize.Concretizer.spec in
        Printf.printf "%-28s %s\n" spec
          (if vs = [] then "valid"
           else String.concat "; "
               (List.map (Format.asprintf "%a" Concretize.Validate.pp_violation) vs))
      | Concretize.Concretizer.Interrupted _ -> Printf.printf "%-28s INTERRUPTED\n" spec
      | Concretize.Concretizer.Unsatisfiable _ -> Printf.printf "%-28s UNSAT\n" spec)
    [ "hdf5"; "example"; "petsc"; "berkeleygw+openmp"; "hpctoolkit ^mpich"; "quantum-espresso" ]
