let () =
  let n = int_of_string Sys.argv.(1) in
  let doc = Cudf.Synth.universe ~seed:1 ~n () in
  List.iter
    (fun stack ->
      let t0 = Unix.gettimeofday () in
      match Cudf.Solver.solve ~stack doc with
      | Cudf.Solver.Solution s ->
        Printf.printf
          "%s n=%d: %.2fs (ground %.2fs solve %.2fs) state=%d costs=%s verified=%b %s facts=%d sets=%d\n%!"
          (Cudf.Criteria.name stack) n
          (Unix.gettimeofday () -. t0)
          s.Cudf.Solver.phases.Cudf.Solver.ground_time
          s.Cudf.Solver.phases.Cudf.Solver.solve_time
          (List.length s.Cudf.Solver.state)
          (String.concat ","
             (List.map (fun (p, v) -> Printf.sprintf "%d@%d" v p) s.Cudf.Solver.costs))
          s.Cudf.Solver.verified
          (match s.Cudf.Solver.quality with `Optimal -> "optimal" | `Degraded _ -> "degraded")
          s.Cudf.Solver.n_facts s.Cudf.Solver.n_sets
      | Cudf.Solver.Unsatisfiable { reasons; _ } ->
        Printf.printf "%s n=%d: UNSAT\n" (Cudf.Criteria.name stack) n;
        List.iter print_endline reasons
      | Cudf.Solver.Interrupted { info; _ } ->
        Printf.printf "%s n=%d: interrupted (%s)\n" (Cudf.Criteria.name stack) n
          (Asp.Budget.reason_name info.Asp.Budget.reason))
    Cudf.Criteria.all
