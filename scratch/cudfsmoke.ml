let () =
  (* round-trip a synth universe *)
  let doc = Cudf.Synth.universe ~seed:1 ~n:60 () in
  let s = Cudf.Doc.to_string doc in
  let doc' = Cudf.Doc.parse s in
  assert (Cudf.Doc.equal doc doc');
  Printf.printf "round-trip ok (%d stanzas, %d bytes)\n%!"
    (List.length doc.Cudf.Doc.packages)
    (String.length s);
  (* solve it under both stacks *)
  List.iter
    (fun stack ->
      match Cudf.Solver.solve ~stack doc with
      | Cudf.Solver.Solution s ->
        Printf.printf "%s: solved, %d pkgs in state, costs=%s verified=%b quality=%s\n%!"
          (Cudf.Criteria.name stack)
          (List.length s.Cudf.Solver.state)
          (String.concat ","
             (List.map (fun (p, v) -> Printf.sprintf "%d@%d" v p) s.Cudf.Solver.costs))
          s.Cudf.Solver.verified
          (match s.Cudf.Solver.quality with `Optimal -> "optimal" | `Degraded _ -> "degraded")
      | Cudf.Solver.Unsatisfiable { reasons; _ } ->
        Printf.printf "%s: UNSAT\n" (Cudf.Criteria.name stack);
        List.iter print_endline reasons;
        exit 1
      | Cudf.Solver.Interrupted _ ->
        print_endline "interrupted";
        exit 1)
    Cudf.Criteria.all;
  (* differential check on tiny universes *)
  let agree = ref 0 and unsat = ref 0 in
  for seed = 0 to 40 do
    let doc = Cudf.Synth.small ~seed () in
    List.iter
      (fun stack ->
        let eng = Cudf.Solver.solve ~stack doc in
        let ref_best = Cudf.Reference.best ~stack doc in
        match (eng, ref_best) with
        | Cudf.Solver.Solution s, Some (rc, _) ->
          assert (Cudf.Reference.valid_state doc s.Cudf.Solver.state);
          let norm costs =
            List.map
              (fun (p, _) ->
                (p, try List.assoc p costs with Not_found -> 0))
              rc
          in
          if norm s.Cudf.Solver.costs <> rc then begin
            Printf.printf "COST MISMATCH seed=%d stack=%s eng=%s ref=%s\n" seed
              (Cudf.Criteria.name stack)
              (String.concat ","
                 (List.map (fun (p, v) -> Printf.sprintf "%d@%d" v p) s.Cudf.Solver.costs))
              (String.concat ","
                 (List.map (fun (p, v) -> Printf.sprintf "%d@%d" v p) rc));
            print_string (Cudf.Doc.to_string doc);
            exit 1
          end;
          incr agree
        | Cudf.Solver.Unsatisfiable _, None ->
          incr unsat;
          incr agree
        | Cudf.Solver.Solution s, None ->
          Printf.printf "ENGINE SAT / REF UNSAT seed=%d stack=%s state=%s\n" seed
            (Cudf.Criteria.name stack)
            (String.concat " "
               (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) s.Cudf.Solver.state));
          print_string (Cudf.Doc.to_string doc);
          exit 1
        | Cudf.Solver.Unsatisfiable { reasons; _ }, Some (rc, st) ->
          Printf.printf "ENGINE UNSAT / REF SAT seed=%d stack=%s refcost=%s refstate=%s\n"
            seed
            (Cudf.Criteria.name stack)
            (String.concat ","
               (List.map (fun (p, v) -> Printf.sprintf "%d@%d" v p) rc))
            (String.concat " "
               (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) st));
          List.iter print_endline reasons;
          print_string (Cudf.Doc.to_string doc);
          exit 1
        | Cudf.Solver.Interrupted _, _ ->
          print_endline "interrupted";
          exit 1)
      Cudf.Criteria.all
  done;
  Printf.printf "differential: %d agreements (%d unsat)\n" !agree !unsat
