let () =
  let n = int_of_string Sys.argv.(1) in
  let strat = if Array.length Sys.argv > 2 then Sys.argv.(2) else "usc" in
  let stack = if Array.length Sys.argv > 3 then Option.get (Cudf.Criteria.of_name Sys.argv.(3)) else Cudf.Criteria.Paranoid in
  let config =
    Asp.Config.make
      ~strategy:(if strat = "bb" then Asp.Config.Bb else Asp.Config.Usc)
      ()
  in
  let doc = Cudf.Synth.universe ~seed:1 ~n () in
  let t0 = Unix.gettimeofday () in
  (match Cudf.Solver.solve ~config ~stack doc with
  | Cudf.Solver.Solution s ->
    Printf.printf "%s/%s n=%d: %.2fs (solve %.2fs) costs=%s %s\n%!"
      (Cudf.Criteria.name stack) strat n
      (Unix.gettimeofday () -. t0)
      s.Cudf.Solver.phases.Cudf.Solver.solve_time
      (String.concat ","
         (List.map (fun (p, v) -> Printf.sprintf "%d@%d" v p) s.Cudf.Solver.costs))
      (match s.Cudf.Solver.quality with `Optimal -> "optimal" | `Degraded _ -> "degraded")
  | Cudf.Solver.Unsatisfiable _ -> print_endline "UNSAT"
  | Cudf.Solver.Interrupted _ -> print_endline "interrupted")
