(* Smoke test: extend/rebase vs from-scratch grounding on small programs. *)

let parse s = Asp.Parser.parse ~file:"<smoke>" s

let show_model (g : Asp.Ground.t) =
  match
    Asp.Solve.solve_ground_verified ~params:Asp.Sat.default_params ~strategy:`Bb
      ~budget:Asp.Budget.unlimited g
  with
  | None -> [ "UNSAT" ]
  | Some (t, costs, _q, _n, verified) ->
    let names =
      List.map (Format.asprintf "%a" Asp.Gatom.pp) (Asp.Translate.answer t)
    in
    let costs = List.map (fun (p, v) -> Printf.sprintf "%d@%d" v p) costs in
    List.sort compare names
    @ [ "| costs:" ] @ costs
    @ [ (if verified then "verified" else "UNVERIFIED") ]

let () =
  let base_prog =
    {|
p(1). p(2).
q(X) :- p(X), not r(X).
{ s(X) : t(X) } 1 :- p(X).
u(X) :- p(X), s(Y) : t(Y).
#minimize { X@1,X : q(X) }.
|}
  in
  let delta = {|
p(3). r(2). t(7).
|} in
  (* from scratch *)
  let g1, _ = Asp.Grounder.ground (parse (base_prog ^ delta)) in
  (* incremental *)
  let base, _ = Asp.Grounder.ground_base (parse base_prog) in
  let g2, _ = Asp.Grounder.extend base (parse delta) in
  Format.printf "scratch:      %s@." (String.concat " " (show_model g1));
  Format.printf "incremental:  %s@." (String.concat " " (show_model g2));
  (* rebase then extend again *)
  let base2, _ = Asp.Grounder.rebase base (parse "p(3). r(2).") in
  let g3, _ = Asp.Grounder.extend base2 (parse "t(7).") in
  Format.printf "rebased:      %s@." (String.concat " " (show_model g3));
  (* base must still work after extensions *)
  let g0, _ = Asp.Grounder.ground (parse base_prog) in
  let gb = Asp.Grounder.base_ground base in
  Format.printf "base scratch: %s@." (String.concat " " (show_model g0));
  Format.printf "base frozen:  %s@." (String.concat " " (show_model gb))
