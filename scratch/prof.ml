let () =
  let repo = Pkg.Repo_core.repo in
  let roots = List.map Specs.Spec_parser.parse Pkg.Repo_core.e4s_roots in
  let t0 = Unix.gettimeofday () in
  match Concretize.Concretizer.solve ~repo roots with
  | Concretize.Concretizer.Concrete s ->
    let st = s.Concretize.Concretizer.sat_stats in
    let p = s.Concretize.Concretizer.phases in
    Printf.printf "unified: %.1fs (ground %.1f solve %.1f) conflicts=%d decisions=%d nodes=%d\n"
      (Unix.gettimeofday () -. t0) p.Concretize.Concretizer.ground_time
      p.Concretize.Concretizer.solve_time st.Asp.Sat.conflicts st.Asp.Sat.decisions
      (List.length (Specs.Spec.concrete_nodes s.Concretize.Concretizer.spec))
  | Concretize.Concretizer.Unsatisfiable _ -> print_endline "UNSAT"
