(* Split ground time: seeding facts only vs full grounding; also measure a
   hypothetical universal base (all packages as roots at once). *)
let repo = Pkg.Repo_core.repo

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let lp = Asp.Parser.parse Concretize.Logic_program.text in
  let names = Pkg.Repo.package_names repo in
  let tot_seed = ref 0. and tot_full = ref 0. in
  List.iter
    (fun pkg ->
      let root = Specs.Spec_parser.parse pkg in
      let facts = Concretize.Facts.generate ~repo [ root ] in
      let _, seed_t =
        time (fun () -> Asp.Grounder.ground facts.Concretize.Facts.statements)
      in
      let _, full_t =
        time (fun () -> Asp.Grounder.ground (lp @ facts.Concretize.Facts.statements))
      in
      tot_seed := !tot_seed +. seed_t;
      tot_full := !tot_full +. full_t)
    names;
  Printf.printf "per-request: seed-only %.3fs, full %.3fs (n=%d)\n" !tot_seed !tot_full
    (List.length names);
  (* universal: all packages as roots in one request *)
  let roots = List.map Specs.Spec_parser.parse names in
  let facts, setup_t = time (fun () -> Concretize.Facts.generate ~repo roots) in
  let (_, stats), g_t =
    time (fun () -> Asp.Grounder.ground (lp @ facts.Concretize.Facts.statements))
  in
  Printf.printf
    "universal: setup %.3fs ground %.3fs (facts %d, atoms %d, rules %d)\n" setup_t g_t
    facts.Concretize.Facts.n_facts stats.Asp.Grounder.possible_atoms
    stats.Asp.Grounder.ground_rules
