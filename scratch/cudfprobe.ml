let () =
  let n = int_of_string Sys.argv.(1) in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let wall = if Array.length Sys.argv > 3 then float_of_string Sys.argv.(3) else 60. in
  let config =
    Asp.Config.make
      ~limits:{ Asp.Budget.wall = Some wall; conflicts = None; instances = None }
      ()
  in
  let doc = Cudf.Synth.universe ~seed ~n () in
  (match Cudf.Solver.solve ~config ~stack:Cudf.Criteria.Trendy doc with
  | Cudf.Solver.Solution s ->
    Printf.printf "n=%d seed=%d: costs=%s %s solve=%.1fs conflicts=%d\n%!" n seed
      (String.concat ","
         (List.map (fun (p, v) -> Printf.sprintf "%d@%d" v p) s.Cudf.Solver.costs))
      (match s.Cudf.Solver.quality with
      | `Optimal -> "OPTIMAL"
      | `Degraded bounds ->
        "degraded " ^ String.concat ","
          (List.map (fun (p, b) -> Printf.sprintf "lb%d@%d" b p) bounds))
      s.Cudf.Solver.phases.Cudf.Solver.solve_time
      s.Cudf.Solver.sat_stats.Asp.Sat.conflicts
  | Cudf.Solver.Unsatisfiable _ -> print_endline "UNSAT"
  | Cudf.Solver.Interrupted { info; _ } ->
    Printf.printf "n=%d seed=%d: interrupted in %s\n" n seed
      (match info.Asp.Budget.phase with _ -> "?"))
