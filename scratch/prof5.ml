let () =
  let repo = Pkg.Repo_core.repo in
  let facts = Concretize.Facts.generate ~repo [ Specs.Spec_parser.parse "slepc" ] in
  let lp = Asp.Parser.parse Concretize.Logic_program.text in
  let with_hints = Array.length Sys.argv > 1 in
  let ground, _ = Asp.Grounder.ground (lp @ facts.Concretize.Facts.statements) in
  let t = Asp.Translate.translate ground in
  let store = ground.Asp.Ground.store in
  if with_hints then begin
    let fact_holds pred args =
      match Asp.Gatom.Store.find store (Asp.Gatom.make pred args) with
      | Some id -> Asp.Gatom.Store.is_fact store id
      | None -> false
    in
    let zero = Asp.Term.Int 0 in
    for id = 0 to Asp.Gatom.Store.count store - 1 do
      let a = Asp.Gatom.Store.atom store id in
      let preferred =
        match (a.Asp.Gatom.pred, a.Asp.Gatom.args) with
        | "attr", [ Asp.Term.Str "version"; p; v ] -> fact_holds "version_declared" [ p; v; zero ]
        | "attr", [ Asp.Term.Str "variant_value"; p; var; value ] -> fact_holds "variant_default" [ p; var; value ]
        | "attr", [ Asp.Term.Str "node_target"; _; tgt ] -> fact_holds "target_weight" [ tgt; zero ]
        | "attr", [ Asp.Term.Str "node_os"; _; os ] -> fact_holds "os_weight" [ os; zero ]
        | "attr", [ Asp.Term.Str "node_compiler_version"; _; c; v ] -> fact_holds "compiler_weight" [ c; v; zero ]
        | "provider", [ v; p ] -> fact_holds "provider_weight" [ v; p; zero ]
        | _ -> false
      in
      if preferred then
        match Asp.Translate.atom_lit t id with
        | Some l -> Asp.Sat.suggest_phase t.Asp.Translate.sat l
        | None -> ()
    done
  end;
  let t0 = Unix.gettimeofday () in
  match Asp.Optimize.run t ~on_model:(Asp.Stable.hook t) with
  | None -> print_endline "UNSAT"
  | Some _ ->
    let st = Asp.Sat.stats t.Asp.Translate.sat in
    Printf.printf "hints=%b  %.2fs conflicts=%d decisions=%d pbprops=%d\n" with_hints
      (Unix.gettimeofday () -. t0) st.Asp.Sat.conflicts st.Asp.Sat.decisions
      st.Asp.Sat.pb_propagations
