let () =
  let repo = Pkg.Repo_core.repo in
  let roots = List.map Specs.Spec_parser.parse Pkg.Repo_core.e4s_roots in
  List.iter
    (fun strategy ->
      let config = Asp.Config.make ~strategy () in
      let t0 = Unix.gettimeofday () in
      match Concretize.Concretizer.solve ~config ~repo roots with
      | Concretize.Concretizer.Concrete s ->
        let hdf5 = Specs.Spec.Node_map.find "hdf5" s.Concretize.Concretizer.spec.Specs.Spec.nodes in
        Printf.printf "%s (%.1fs): hdf5 deps=%s costs=%s\n"
          (match strategy with Asp.Config.Bb -> "bb " | Asp.Config.Usc -> "usc")
          (Unix.gettimeofday () -. t0)
          (String.concat "," hdf5.Specs.Spec.depends)
          (String.concat " "
             (List.filter_map (fun (p, v) -> if v <> 0 then Some (Printf.sprintf "%d@%d" v p) else None)
                s.Concretize.Concretizer.costs))
      | Concretize.Concretizer.Unsatisfiable _ -> print_endline "UNSAT")
    [ Asp.Config.Usc; Asp.Config.Bb ]
