let () =
  let repo = Pkg.Repo_core.repo in
  let db = Pkg.Database.create () in
  ignore
    (Pkg.Buildcache_gen.populate ~variations:5 ~repo
       ~combos:Pkg.Buildcache_gen.default_combos ~roots:Pkg.Repo_core.e4s_roots db
      : Pkg.Buildcache_gen.stats);
  Printf.printf "cache: %d specs\n%!" (Pkg.Database.size db);
  List.iter
    (fun strategy ->
      let config = Asp.Config.make ~strategy () in
      let t0 = Unix.gettimeofday () in
      match Concretize.Concretizer.solve_spec ~config ~repo ~installed:db "hdf5" with
      | Concretize.Concretizer.Concrete s ->
        Printf.printf "%s (%.1fs): reused=%d built=%d costs=%s\n%!"
          (match strategy with Asp.Config.Bb -> "bb " | Asp.Config.Usc -> "usc")
          (Unix.gettimeofday () -. t0)
          (List.length s.Concretize.Concretizer.reused)
          (List.length s.Concretize.Concretizer.built)
          (String.concat " "
             (List.filter_map
                (fun (p, v) -> if v <> 0 then Some (Printf.sprintf "%d@%d" v p) else None)
                s.Concretize.Concretizer.costs))
      | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
      | Concretize.Concretizer.Unsatisfiable _ -> print_endline "UNSAT")
    [ Asp.Config.Usc; Asp.Config.Bb ]
