let () =
  let repo = Pkg.Repo_core.repo in
  List.iter
    (fun root ->
      let t0 = Unix.gettimeofday () in
      match Concretize.Concretizer.solve_spec ~repo root with
      | Concretize.Concretizer.Concrete s ->
        let st = s.Concretize.Concretizer.sat_stats in
        Printf.printf "%-20s %6.2fs conflicts=%d\n%!" root
          (Unix.gettimeofday () -. t0) st.Asp.Sat.conflicts
      | Concretize.Concretizer.Unsatisfiable _ -> Printf.printf "%-20s UNSAT\n%!" root)
    [ "slepc"; "petsc"; "caliper"; "trilinos"; "hdf5" ]
