(* cudf_solve: solve Linux-distro package universes (CUDF documents, the
   Mancoosi / Debian upgrade-problem exchange format) on the same ASP
   engine that concretizes Spack specs. *)

open Cmdliner

let print_phases (p : Cudf.Solver.phases) =
  Printf.printf
    "Phases: setup %.3fs, load %.3fs, ground %.3fs, solve %.3fs (total %.3fs)\n"
    p.Cudf.Solver.setup_time p.Cudf.Solver.load_time p.Cudf.Solver.ground_time
    p.Cudf.Solver.solve_time (Cudf.Solver.total p)

let print_result ~stack ~show_stats ~show_state result =
  match result with
  | Cudf.Solver.Interrupted { info; phases; n_facts } ->
    Format.printf "INTERRUPTED: %a@." Asp.Budget.pp_info info;
    if show_stats then begin
      Printf.printf "Facts: %d\n" n_facts;
      print_phases phases
    end;
    3
  | Cudf.Solver.Unsatisfiable { reasons; phases; n_facts } ->
    print_endline "UNSATISFIABLE: no state satisfies the request";
    List.iter (Printf.printf "  possible cause: %s\n") reasons;
    if show_stats then begin
      Printf.printf "Facts: %d\n" n_facts;
      print_phases phases
    end;
    1
  | Cudf.Solver.Solution s ->
    Printf.printf "SOLVED (%s): %d packages in the final state\n"
      (Cudf.Criteria.name stack)
      (List.length s.Cudf.Solver.state);
    Printf.printf "  removed %d, new %d, changed %d\n"
      (List.length s.Cudf.Solver.removed)
      (List.length s.Cudf.Solver.installed_new)
      (List.length s.Cudf.Solver.changed);
    List.iter
      (fun pv -> Format.printf "  %a@." (Cudf.Criteria.pp_cost stack) pv)
      s.Cudf.Solver.costs;
    (match s.Cudf.Solver.quality with
    | `Optimal -> print_endline "  optimality proven at every level"
    | `Degraded _ ->
      print_endline
        "  note: budget expired mid-optimization; this state is valid but \
         may be suboptimal");
    if s.Cudf.Solver.verified then
      print_endline "  verified: independent model check passed";
    if show_state then
      List.iter
        (fun (n, v) -> Printf.printf "    %s = %d\n" n v)
        s.Cudf.Solver.state;
    if show_stats then begin
      Printf.printf
        "Universe: %d packages, %d facts, %d satisfier sets, logic program: \
         %d lines\n"
        s.Cudf.Solver.n_packages s.Cudf.Solver.n_facts s.Cudf.Solver.n_sets
        (Cudf.Logic.line_count stack);
      let g = s.Cudf.Solver.ground_stats in
      Printf.printf "Ground: %d atoms, %d rules\n" g.Asp.Grounder.possible_atoms
        g.Asp.Grounder.ground_rules;
      let st = s.Cudf.Solver.sat_stats in
      Printf.printf "Search: %d conflicts, %d decisions, %d restarts\n"
        st.Asp.Sat.conflicts st.Asp.Sat.decisions st.Asp.Sat.restarts;
      print_phases s.Cudf.Solver.phases
    end;
    0

let run file synth seed stack_name preset timeout retries jobs explain
    no_verify show_stats show_state materialize =
  let stack =
    match Cudf.Criteria.of_name stack_name with
    | Some s -> s
    | None ->
      Printf.eprintf "unknown criterion stack %S (use paranoid or trendy)\n"
        stack_name;
      exit 2
  in
  let preset =
    match Asp.Config.preset_of_name preset with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown preset %s\n" preset;
      exit 2
  in
  let doc =
    match (file, synth) with
    | "", 0 ->
      Printf.eprintf "Error: give a CUDF file or --synth N\n";
      exit 2
    | "", n -> Cudf.Synth.universe ~seed ~n ()
    | f, 0 -> (
      let text =
        try
          let ic = open_in_bin f in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          s
        with Sys_error m ->
          Printf.eprintf "Error: %s\n" m;
          exit 2
      in
      match Cudf.Doc.parse text with
      | doc -> doc
      | exception Cudf.Doc.Parse_error (line, msg) ->
        Printf.eprintf "Error: %s:%d: %s\n" f line msg;
        exit 2)
    | _ ->
      Printf.eprintf "Error: give either a file or --synth N, not both\n";
      exit 2
  in
  let limits =
    {
      Asp.Budget.no_limits with
      Asp.Budget.wall = (if timeout > 0. then Some timeout else None);
    }
  in
  let config = Asp.Config.make ~preset ~limits ~verify:(not no_verify) () in
  (* first ^C cancels the solve cooperatively; a second one kills *)
  let tok = Asp.Budget.token () in
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle
       (fun _ ->
         if Asp.Budget.is_cancelled tok then exit 130;
         Asp.Budget.cancel tok));
  let installed_mode = if materialize then `Materialize else `Stream in
  let solve ?pool ?racers () =
    Cudf.Solver.solve_escalating ~attempts:(retries + 1) ~config ~cancel:tok
      ?pool ?racers ~explain ~stack ~installed_mode doc
  in
  let result =
    if jobs <= 1 then solve ()
    else
      Asp.Pool.with_pool ~domains:jobs (fun pool ->
          solve ~pool ~racers:jobs ())
  in
  exit (print_result ~stack ~show_stats ~show_state result)

let file =
  Arg.(value & pos 0 string "" & info [] ~docv:"FILE"
         ~doc:"CUDF document to solve (stanza format: preamble, package \
               stanzas, one request stanza).")

let synth =
  Arg.(value & opt int 0 & info [ "synth" ] ~docv:"N"
         ~doc:"Solve a deterministic synthetic Debian-like universe of N \
               package stanzas instead of reading a file.")

let seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S"
         ~doc:"Random seed for --synth.")

let stack_name =
  Arg.(value & opt string "paranoid" & info [ "stack" ] ~docv:"STACK"
         ~doc:"User-objective criterion stack: 'paranoid' (minimize removed, \
               then changed) or 'trendy' (minimize outdated, then new, then \
               unmet recommends).")

let preset =
  Arg.(value & opt string "tweety" & info [ "preset" ] ~docv:"PRESET"
         ~doc:"clingo-style solver preset (tweety|trendy|handy|frumpy|jumpy|crafty).")

let timeout =
  Arg.(value & opt float 0. & info [ "timeout" ] ~docv:"SECS"
         ~doc:"Wall-clock budget per solve in seconds (0 = none).")

let retries =
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
         ~doc:"On an interrupted solve, retry up to N times with doubled \
               limits and a reseeded search.")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Race N diverse solver configurations on N domains (portfolio).")

let explain =
  Arg.(value & flag & info [ "explain" ]
         ~doc:"On an unsatisfiable universe, extract a provenance-mapped \
               minimal unsat core naming the offending depends:/conflicts: \
               stanzas and request lines (slower than the default syntactic \
               diagnosis).")

let no_verify =
  Arg.(value & flag & info [ "no-verify" ]
         ~doc:"Skip the independent re-verification of the winning model.")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print solver phases and statistics.")

let show_state =
  Arg.(value & flag & info [ "state" ] ~doc:"Print the full final installation state.")

let materialize =
  Arg.(value & flag & info [ "materialize" ]
         ~doc:"Emit installed-state facts as parsed statements instead of \
               streaming them into the grounder (slower at scale; for \
               debugging the streaming path).")

let cmd =
  let doc = "solve CUDF package universes with the ASP-based dependency solver" in
  let man =
    [
      `S Manpage.s_examples;
      `P "Solve a 1000-stanza synthetic Debian-like universe:";
      `Pre "  cudf_solve --synth 1000 --stats";
      `P "Trendy upgrade run over a CUDF document, with portfolio racing:";
      `Pre "  cudf_solve --stack trendy -j 4 universe.cudf";
      `P "Name the stanzas behind an unsatisfiable request:";
      `Pre "  cudf_solve --explain broken.cudf";
    ]
  in
  Cmd.v (Cmd.info "cudf_solve" ~doc ~man)
    Term.(
      const run $ file $ synth $ seed $ stack_name $ preset $ timeout
      $ retries $ jobs $ explain $ no_verify $ stats $ show_state
      $ materialize)

let () = exit (Cmd.eval cmd)
