(* asp_run: a clingo-like command-line front end for the ASP engine.

   Reads a logic program from files (or stdin with "-"), prints the optimal
   stable model, its cost vector and solver statistics. *)

open Cmdliner

let read_file = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let run files preset show_stats nmodels timeout jobs explain no_verify =
  let preset =
    match Asp.Config.preset_of_name preset with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown preset %s\n" preset;
      exit 2
  in
  let limits =
    {
      Asp.Budget.no_limits with
      Asp.Budget.wall = (if timeout > 0. then Some timeout else None);
    }
  in
  let config = Asp.Config.make ~preset ~limits ~verify:(not no_verify) () in
  (* first ^C cancels the solve cooperatively (degraded result if a model
     is already in hand); a second one falls back to the default and kills *)
  let tok = Asp.Budget.token () in
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle
       (fun _ ->
         if Asp.Budget.is_cancelled tok then exit 130;
         Asp.Budget.cancel tok));
  let budget = Asp.Budget.start ~cancel:tok limits in
  let src = String.concat "\n" (List.map read_file files) in
  let solve () =
    if jobs > 1 then
      Asp.Portfolio.solve_program ~config ~budget ~jobs (Asp.Parser.parse src)
    else Asp.Solve.solve_text ~config ~budget src
  in
  match solve () with
  | exception Asp.Solver_error.Error e ->
    Format.eprintf "error: %a@." Asp.Solver_error.pp e;
    exit 2
  | Asp.Solve.Interrupted { info; ground_time; solve_time } ->
    Format.printf "INTERRUPTED: %a@." Asp.Budget.pp_info info;
    if show_stats then
      Printf.printf "Time: ground %.3fs, solve %.3fs\n" ground_time solve_time;
    exit 3
  | Asp.Solve.Unsat { ground_time; solve_time } ->
    print_endline "UNSATISFIABLE";
    if explain then begin
      (* re-ground and extract a minimal core of constraint instances, each
         tagged with its source line *)
      let ground, _ = Asp.Grounder.ground (Asp.Parser.parse src) in
      match Asp.Explain.explain ~budget:(Asp.Budget.start ~cancel:tok Asp.Budget.no_limits) ground with
      | Asp.Explain.Unsat_core { causes; minimal } ->
        Printf.printf "%s unsat core (%d constraint instance%s):\n"
          (if minimal then "minimal" else "non-minimal")
          (List.length causes)
          (if List.length causes = 1 then "" else "s");
        List.iter (fun c -> Format.printf "  %a@." Asp.Explain.pp_cause c) causes
      | Asp.Explain.Satisfiable ->
        print_endline "explain: the re-solve found the program satisfiable"
      | Asp.Explain.Exhausted info ->
        Format.printf "explain: budget exhausted (%a)@." Asp.Budget.pp_info info
    end;
    if show_stats then
      Printf.printf "Time: ground %.3fs, solve %.3fs\n" ground_time solve_time;
    exit 1
  | Asp.Solve.Sat o ->
    (if nmodels <> 1 then begin
       let limit = if nmodels = 0 then max_int else nmodels in
       let models = Asp.Solve.enumerate ~config ~limit (Asp.Parser.parse src) in
       List.iteri
         (fun i m ->
           Printf.printf "Answer: %d\n" (i + 1);
           List.iter (fun a -> Format.printf "%a " Asp.Gatom.pp a) m;
           Format.printf "@.")
         models
     end
     else begin
       print_endline "Answer: 1";
       List.iter (fun a -> Format.printf "%a " Asp.Gatom.pp a) o.Asp.Solve.answer;
       Format.printf "@."
     end);
    if o.Asp.Solve.costs <> [] then begin
      print_string "Optimization:";
      List.iter (fun (p, v) -> Printf.printf " %d@%d" v p) o.Asp.Solve.costs;
      (match o.Asp.Solve.quality with
      | `Degraded _ -> print_string "  (suboptimal: budget expired mid-optimization)"
      | `Optimal -> ());
      print_newline ()
    end;
    print_endline "SATISFIABLE";
    if show_stats then begin
      let s = o.Asp.Solve.sat_stats in
      Printf.printf "Atoms      : %d possible\n" o.Asp.Solve.ground_stats.Asp.Grounder.possible_atoms;
      Printf.printf "Rules      : %d ground\n" o.Asp.Solve.ground_stats.Asp.Grounder.ground_rules;
      Printf.printf "Models     : %d enumerated\n" o.Asp.Solve.models_enumerated;
      Printf.printf "Conflicts  : %d\n" s.Asp.Sat.conflicts;
      Printf.printf "Decisions  : %d\n" s.Asp.Sat.decisions;
      Printf.printf "Restarts   : %d\n" s.Asp.Sat.restarts;
      Printf.printf "Time       : ground %.3fs, solve %.3fs\n" o.Asp.Solve.ground_time
        o.Asp.Solve.solve_time
    end

let files =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc:"Logic program files ('-' for stdin).")

let preset =
  Arg.(value & opt string "tweety" & info [ "preset"; "c" ] ~docv:"PRESET"
         ~doc:"Solver configuration preset (frumpy|jumpy|tweety|trendy|crafty|handy).")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print solver statistics.")

let nmodels =
  Arg.(value & opt int 1 & info [ "models"; "n" ] ~docv:"N"
         ~doc:"Enumerate up to N (optimal) stable models (0 = all).")

let timeout =
  Arg.(value & opt float 0. & info [ "timeout"; "t" ] ~docv:"SECS"
         ~doc:"Wall-clock budget in seconds (0 = none); on expiry the best model found so far is reported as suboptimal.")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Race N diverse solver configurations on N domains over the shared ground program; the first proof of optimality (or unsatisfiability) wins.")

let explain =
  Arg.(value & flag & info [ "explain" ]
         ~doc:"On UNSAT, extract a minimal core of integrity-constraint instances with their source lines (assumption-based solving plus deletion shrinking).")

let no_verify =
  Arg.(value & flag & info [ "no-verify" ]
         ~doc:"Skip the independent re-verification (stable-model, support and cost checks) of reported models.")

let cmd =
  let doc = "ground and solve an answer set program" in
  Cmd.v (Cmd.info "asp_run" ~doc)
    Term.(const run $ files $ preset $ stats $ nmodels $ timeout $ jobs
          $ explain $ no_verify)

let () = exit (Cmd.eval cmd)
