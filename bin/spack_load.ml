(* spack_load: load generator and chaos harness for spack_serve.

   Replays many concurrent clients issuing a mixed solve / install / batch
   workload against a running daemon, at a ladder of load tiers (multiples
   of a base client count).  Chaos mode additionally injects client-side
   misbehaviour — random disconnects, malformed frames, requests abandoned
   mid-solve — which a production daemon must shrug off.  Results (per-tier
   throughput, latency percentiles, shed/error/reconnect counts and the
   daemon's own stats) are emitted as JSON, the BENCH_serve.json artifact. *)

open Cmdliner
module Client = Server.Client
module Protocol = Server.Protocol
module Json = Server.Json

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let default_specs =
  [ "hdf5"; "netcdf-c"; "petsc"; "fftw"; "gromacs"; "lammps"; "zlib"; "cmake" ]

(* Root names matching a daemon started with [--repo N]: same arithmetic as
   Repo_synth.scaled, so every generated name exists over there. *)
let synth_specs n =
  let p = Pkg.Repo_synth.scaled n in
  List.init p.Pkg.Repo_synth.n_apps (Printf.sprintf "app-%03d")
  @ List.init p.Pkg.Repo_synth.n_libs (Printf.sprintf "lib-%03d")

type counters = {
  mutable n_ok : int;
  mutable n_shed : int;
  mutable n_error : int;
  mutable n_reconnects : int;
  mutable n_chaos : int;
  mutable latencies : float list;  (* seconds, successful requests only *)
}

let zero () =
  {
    n_ok = 0;
    n_shed = 0;
    n_error = 0;
    n_reconnects = 0;
    n_chaos = 0;
    latencies = [];
  }

let merge mutex total c =
  Mutex.lock mutex;
  total.n_ok <- total.n_ok + c.n_ok;
  total.n_shed <- total.n_shed + c.n_shed;
  total.n_error <- total.n_error + c.n_error;
  total.n_reconnects <- total.n_reconnects + c.n_reconnects;
  total.n_chaos <- total.n_chaos + c.n_chaos;
  total.latencies <- List.rev_append c.latencies total.latencies;
  Mutex.unlock mutex

(* ---- chaos moves on raw sockets, outside the Client's retry layer ---- *)

let raw_send socket payload ~await_reply =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try
       Unix.connect fd (Unix.ADDR_UNIX socket);
       ignore (Unix.write_substring fd payload 0 (String.length payload));
       if await_reply then begin
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
         try ignore (Unix.read fd (Bytes.create 512) 0 512)
         with Unix.Unix_error _ -> ()
       end
     with Unix.Unix_error _ | Sys_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let chaos_move rng socket spec =
  match Random.State.int rng 3 with
  | 0 ->
    (* malformed frame: the daemon must answer bad_request, not die *)
    raw_send socket "this is not json\n" ~await_reply:true
  | 1 ->
    (* mid-solve kill: enqueue a solve and vanish before the reply *)
    raw_send socket
      (Json.to_string (Protocol.request_to_json ~id:1 (Protocol.solve spec))
      ^ "\n")
      ~await_reply:false
  | _ ->
    (* connect-and-slam *)
    raw_send socket "" ~await_reply:false

(* ---- one client thread -------------------------------------------- *)

type workload = {
  socket : string;
  specs : string array;
  install_frac : float;
  batch_frac : float;
  batch_size : int;
  req_timeout : float option;
  chaos : bool;
}

let run_client wl ~seed ~deadline out mutex =
  let rng = Random.State.make [| seed; 0x10ad |] in
  let c = zero () in
  let pick () = wl.specs.(Random.State.int rng (Array.length wl.specs)) in
  let rec session client =
    if Unix.gettimeofday () >= deadline then Client.close client
    else if wl.chaos && Random.State.float rng 1.0 < 0.05 then begin
      (* random disconnect: drop this connection, continue on a fresh one *)
      c.n_chaos <- c.n_chaos + 1;
      Client.close client;
      chaos_move rng wl.socket (pick ());
      session client (* the client redials lazily on the next request *)
    end
    else begin
      let r = Random.State.float rng 1.0 in
      let req =
        if r < wl.install_frac then
          Protocol.install ?timeout:wl.req_timeout (pick ())
        else if r < wl.install_frac +. wl.batch_frac then
          Protocol.solve_many ?timeout:wl.req_timeout
            (List.init wl.batch_size (fun _ -> pick ()))
        else Protocol.solve ?timeout:wl.req_timeout (pick ())
      in
      let t0 = Unix.gettimeofday () in
      (match Client.request client req with
      | Ok (Protocol.Result _ | Protocol.Results _ | Protocol.Installed _) ->
        c.n_ok <- c.n_ok + 1;
        c.latencies <- (Unix.gettimeofday () -. t0) :: c.latencies
      | Ok (Protocol.Error { kind = Protocol.Overloaded; _ }) ->
        c.n_shed <- c.n_shed + 1
      | Ok _ -> c.n_error <- c.n_error + 1
      | Error _ -> c.n_error <- c.n_error + 1);
      session client
    end
  in
  (match Client.connect ~retries:3 ~backoff:0.02 ~recv_timeout:10.0 wl.socket with
  | Error _ -> c.n_error <- c.n_error + 1
  | Ok client ->
    session client;
    c.n_reconnects <- c.n_reconnects + Client.reconnects client);
  merge mutex out c

(* ------------------------------------------------------------------ *)
(* Tiers and reporting                                                 *)
(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let daemon_stats socket =
  match Client.connect ~retries:2 socket with
  | Error _ -> Json.Null
  | Ok c ->
    let r =
      match Client.request c Protocol.Stats with
      | Ok (Protocol.Stats_reply j) -> j
      | _ -> Json.Null
    in
    Client.close c;
    r

let run_tier wl ~mult ~clients ~duration ~seed =
  let n = clients * mult in
  let total = zero () in
  let mutex = Mutex.create () in
  let deadline = Unix.gettimeofday () +. duration in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () -> run_client wl ~seed:(seed + (mult * 1000) + i) ~deadline total mutex)
          ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list total.latencies in
  Array.sort compare lat;
  let ms x = Float.round (x *. 1e6) /. 1e3 in
  let requests = total.n_ok + total.n_shed + total.n_error in
  Printf.printf
    "spack_load: x%-2d %3d clients  %5d req  %5d ok  %4d shed  %3d err  %4d \
     reconn  p50 %.1fms  p99 %.1fms\n%!"
    mult n requests total.n_ok total.n_shed total.n_error total.n_reconnects
    (ms (percentile lat 0.50))
    (ms (percentile lat 0.99));
  Json.Obj
    [
      ("load", Json.Int mult);
      ("clients", Json.Int n);
      ("duration_s", Json.Float elapsed);
      ("requests", Json.Int requests);
      ("ok", Json.Int total.n_ok);
      ("shed", Json.Int total.n_shed);
      ("errors", Json.Int total.n_error);
      ("reconnects", Json.Int total.n_reconnects);
      ("chaos_events", Json.Int total.n_chaos);
      ( "shed_rate",
        Json.Float
          (if requests = 0 then 0.
           else float_of_int total.n_shed /. float_of_int requests) );
      ( "throughput_rps",
        Json.Float
          (if elapsed > 0. then float_of_int total.n_ok /. elapsed else 0.) );
      ("p50_ms", Json.Float (ms (percentile lat 0.50)));
      ("p95_ms", Json.Float (ms (percentile lat 0.95)));
      ("p99_ms", Json.Float (ms (percentile lat 0.99)));
      ("daemon", daemon_stats wl.socket);
    ]

(* ------------------------------------------------------------------ *)
(* Failover chaos tier: kill -9 the primary under install load         *)
(* ------------------------------------------------------------------ *)

(* Shared state of one failover drill.  [kill_time] flips from 0 to the
   SIGKILL timestamp; each client measures the gap from that instant to
   its first install acked by the promoted standby.  [acked] collects
   every spec whose install the old primary (or the new one) acknowledged
   — the lost-ack audit replays them against the survivor afterwards. *)
type failover_ctx = {
  standby : string;
  kill_time : float Atomic.t;
  recoveries : float list ref;  (* guarded by the tier mutex *)
  acked : (string, unit) Hashtbl.t;  (* guarded by the tier mutex *)
}

let run_failover_client wl ctx ~seed ~deadline out mutex =
  let rng = Random.State.make [| seed; 0xfa11 |] in
  let c = zero () in
  let recovered = ref false in
  let pick () = wl.specs.(Random.State.int rng (Array.length wl.specs)) in
  match
    Client.connect_many ~retries:12 ~backoff:0.05 ~recv_timeout:10.0
      [ wl.socket; ctx.standby ]
  with
  | Error _ ->
    c.n_error <- c.n_error + 1;
    merge mutex out c
  | Ok client ->
    let rec loop () =
      if Unix.gettimeofday () < deadline then begin
        let spec = pick () in
        let is_install = Random.State.float rng 1.0 < wl.install_frac in
        let req =
          if is_install then Protocol.install ?timeout:wl.req_timeout spec
          else Protocol.solve ?timeout:wl.req_timeout spec
        in
        let t0 = Unix.gettimeofday () in
        (match Client.call client req with
        | Ok (Protocol.Result _ | Protocol.Results _ | Protocol.Installed _)
          ->
          let t1 = Unix.gettimeofday () in
          c.n_ok <- c.n_ok + 1;
          c.latencies <- (t1 -. t0) :: c.latencies;
          if is_install then begin
            Mutex.lock mutex;
            Hashtbl.replace ctx.acked spec ();
            (* write availability restored: first install ack after the
               kill is this client's failover latency *)
            let tk = Atomic.get ctx.kill_time in
            if tk > 0. && not !recovered then begin
              recovered := true;
              ctx.recoveries := (t1 -. tk) :: !(ctx.recoveries)
            end;
            Mutex.unlock mutex
          end
        | Ok (Protocol.Error { kind = Protocol.Overloaded; _ }) ->
          c.n_shed <- c.n_shed + 1
        | Ok _ -> c.n_error <- c.n_error + 1
        | Error _ -> c.n_error <- c.n_error + 1);
        loop ()
      end
    in
    loop ();
    c.n_reconnects <- Client.reconnects client;
    Client.close client;
    merge mutex out c

(* Replay every acked install against the survivor: an [Installed] reply
   with fresh hashes means the records were missing — that ack was lost.
   Under --repl-ack=sync this must come back 0. *)
let audit_lost_acks standby acked =
  match Client.connect ~retries:6 ~recv_timeout:10.0 standby with
  | Error _ -> (Hashtbl.length acked, 0, false)
  | Ok c ->
    let lost, unknown =
      Hashtbl.fold
        (fun spec () (lost, unknown) ->
          match Client.call c (Protocol.install spec) with
          | Ok (Protocol.Installed { hashes = []; _ }) -> (lost, unknown)
          | Ok (Protocol.Installed _) -> (lost + 1, unknown)
          | _ -> (lost, unknown + 1))
        acked (0, 0)
    in
    Client.close c;
    (lost, unknown, true)

let run_failover_tier wl ~standby ~kill_pid ~clients ~duration ~seed =
  let ctx =
    {
      standby;
      kill_time = Atomic.make 0.;
      recoveries = ref [];
      acked = Hashtbl.create 64;
    }
  in
  let total = zero () in
  let mutex = Mutex.create () in
  let deadline = Unix.gettimeofday () +. duration in
  let promote_result = ref None in
  let killer =
    Thread.create
      (fun () ->
        (* let installs accumulate on the primary first *)
        Thread.delay (Float.min 1.5 (duration /. 3.));
        let tk = Unix.gettimeofday () in
        (try Unix.kill kill_pid Sys.sigkill
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        Atomic.set ctx.kill_time tk;
        let rec promote n =
          if n > 100 then None
          else
            match Client.connect ~retries:2 ~recv_timeout:5.0 standby with
            | Error _ ->
              Thread.delay 0.05;
              promote (n + 1)
            | Ok c -> (
              let r = Client.request c Protocol.Promote in
              Client.close c;
              match r with
              | Ok (Protocol.Promoted { epoch }) ->
                Some (Unix.gettimeofday () -. tk, epoch)
              | _ ->
                Thread.delay 0.05;
                promote (n + 1))
        in
        promote_result := promote 0)
      ()
  in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            run_failover_client wl ctx ~seed:(seed + 9000 + i) ~deadline total
              mutex)
          ())
  in
  List.iter Thread.join threads;
  Thread.join killer;
  let lost, unknown, audited = audit_lost_acks standby ctx.acked in
  let rec_lat = Array.of_list !(ctx.recoveries) in
  Array.sort compare rec_lat;
  let ms x = Float.round (x *. 1e6) /. 1e3 in
  let promote_ms, epoch =
    match !promote_result with
    | Some (d, e) -> (ms d, e)
    | None -> (-1., -1)
  in
  Printf.printf
    "spack_load: failover  %3d clients  %5d ok  %3d err  killed pid %d  \
     promote %.1fms  recover p50 %.1fms p99 %.1fms  acked %d  lost %d\n%!"
    clients total.n_ok total.n_error kill_pid promote_ms
    (ms (percentile rec_lat 0.50))
    (ms (percentile rec_lat 0.99))
    (Hashtbl.length ctx.acked) lost;
  Json.Obj
    [
      ("clients", Json.Int clients);
      ("killed_pid", Json.Int kill_pid);
      ("ok", Json.Int total.n_ok);
      ("shed", Json.Int total.n_shed);
      ("errors", Json.Int total.n_error);
      ("reconnects", Json.Int total.n_reconnects);
      ("promote_ms", Json.Float promote_ms);
      ("promoted_epoch", Json.Int epoch);
      ("recovered_clients", Json.Int (Array.length rec_lat));
      ("failover_p50_ms", Json.Float (ms (percentile rec_lat 0.50)));
      ("failover_p99_ms", Json.Float (ms (percentile rec_lat 0.99)));
      ("acked_installs", Json.Int (Hashtbl.length ctx.acked));
      ("lost_acks", Json.Int lost);
      ("audit_errors", Json.Int unknown);
      ("audited", Json.Bool audited);
      ("daemon", daemon_stats standby);
    ]

let parse_tiers s =
  String.split_on_char ',' s
  |> List.filter_map (fun x ->
         match int_of_string_opt (String.trim x) with
         | Some n when n > 0 -> Some n
         | _ -> None)

let run socket clients duration tiers chaos specs synth install_frac batch_frac
    batch_size req_timeout seed json_path kill_primary standby =
  let specs =
    match (specs, synth) with
    | Some s, _ ->
      Array.of_list
        (List.filter (fun x -> x <> "") (String.split_on_char ',' s))
    | None, Some n -> Array.of_list (synth_specs n)
    | None, None -> Array.of_list default_specs
  in
  if Array.length specs = 0 then begin
    Printf.eprintf "spack_load: empty spec pool\n";
    exit 2
  end;
  let tiers =
    (* "--tiers 0" skips the load ladder (a failover-only run) *)
    if String.trim tiers = "0" then []
    else match parse_tiers tiers with [] -> [ 1; 2; 10 ] | ts -> ts
  in
  let wl =
    {
      socket;
      specs;
      install_frac;
      batch_frac;
      batch_size = max 2 batch_size;
      req_timeout = (if req_timeout > 0. then Some req_timeout else None);
      chaos;
    }
  in
  (* fail fast when no daemon is listening *)
  (match Client.connect ~retries:0 socket with
  | Error m ->
    Printf.eprintf "spack_load: cannot connect: %s\n" m;
    exit 2
  | Ok c -> Client.close c);
  let results =
    List.map (fun mult -> run_tier wl ~mult ~clients ~duration ~seed) tiers
  in
  (* --kill-primary PID (with --standby SOCK): after the load tiers, run
     the failover drill — kill -9 the primary mid-install-stream, promote
     the standby, measure write-unavailability per client and audit that
     no acked install was lost *)
  let failover =
    match (kill_primary, standby) with
    | 0, _ -> []
    | _, None ->
      Printf.eprintf "spack_load: --kill-primary needs --standby SOCK\n";
      exit 2
    | pid, Some standby ->
      [
        ( "failover",
          run_failover_tier wl ~standby ~kill_pid:pid ~clients ~duration ~seed
        );
      ]
  in
  let report =
    Json.Obj
      ([
         ("bench", Json.Str "serve");
         ("chaos", Json.Bool chaos);
         ("base_clients", Json.Int clients);
         ("tier_duration_s", Json.Float duration);
         ("spec_pool", Json.Int (Array.length specs));
         ("tiers", Json.List results);
       ]
      @ failover)
  in
  (match json_path with
  | Some p ->
    let oc = open_out p in
    output_string oc (Json.to_string report);
    output_char oc '\n';
    close_out oc;
    Printf.printf "spack_load: wrote %s\n%!" p
  | None -> print_endline (Json.to_string report));
  0

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let socket =
  Arg.(
    value
    & opt string "spack_serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket to load.")

let clients =
  Arg.(
    value & opt int 20
    & info [ "clients" ] ~docv:"N"
        ~doc:"Base concurrent client count (the 1x tier).")

let duration =
  Arg.(
    value & opt float 5.
    & info [ "duration" ] ~docv:"SECS" ~doc:"Seconds per load tier.")

let tiers =
  Arg.(
    value & opt string "1,2,10"
    & info [ "tiers" ] ~docv:"M1,M2,.."
        ~doc:"Load multipliers to run, each for --duration seconds.")

let chaos =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:
          "Inject client misbehaviour: random disconnects, malformed \
           frames, requests abandoned mid-solve.")

let specs =
  Arg.(
    value
    & opt (some string) None
    & info [ "specs" ] ~docv:"S1,S2,.."
        ~doc:"Comma-separated spec pool (default: common HPC packages).")

let synth =
  Arg.(
    value
    & opt (some int) None
    & info [ "synth" ] ~docv:"N"
        ~doc:
          "Generate the spec pool for a daemon running --repo N (synthetic \
           repository root names).")

let install_frac =
  Arg.(
    value & opt float 0.1
    & info [ "install-frac" ] ~docv:"F" ~doc:"Fraction of install requests.")

let batch_frac =
  Arg.(
    value & opt float 0.1
    & info [ "batch-frac" ] ~docv:"F"
        ~doc:"Fraction of solve_many batch requests.")

let batch_size =
  Arg.(
    value & opt int 3
    & info [ "batch-size" ] ~docv:"K" ~doc:"Roots per batch request.")

let req_timeout =
  Arg.(
    value & opt float 0.
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:"Client-side per-request deadline sent to the daemon (0 = none).")

let seed =
  Arg.(
    value & opt int 7
    & info [ "seed" ] ~docv:"N" ~doc:"Deterministic workload seed.")

let json_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Write the JSON report here (default: stdout).")

let kill_primary =
  Arg.(
    value & opt int 0
    & info [ "kill-primary" ] ~docv:"PID"
        ~doc:
          "Failover drill (needs --standby): after the load tiers, stream \
           installs through the --socket/--standby failover chain, kill -9 \
           this daemon PID mid-stream, promote the standby, and report \
           per-client failover latency (p50/p99) plus a lost-ack audit — \
           every acked install is replayed against the survivor and must \
           already be present (0 lost under --repl-ack=sync).")

let standby =
  Arg.(
    value
    & opt (some string) None
    & info [ "standby" ] ~docv:"SOCK"
        ~doc:
          "Hot-standby follower socket used as the second failover \
           endpoint and promotion target of --kill-primary.")

let cmd =
  let doc = "generate load (and chaos) against a running spack_serve" in
  let man =
    [
      `S Manpage.s_examples;
      `P "Bench a daemon at 1x/2x/10x with chaos:";
      `Pre
        "  spack_serve --socket /tmp/s.sock --repo 300 &\n\
        \  spack_load --socket /tmp/s.sock --synth 300 --chaos --json \
         BENCH_serve.json";
    ]
  in
  Cmd.v
    (Cmd.info "spack_load" ~doc ~man)
    Term.(
      const run $ socket $ clients $ duration $ tiers $ chaos $ specs $ synth
      $ install_frac $ batch_frac $ batch_size $ req_timeout $ seed $ json_path
      $ kill_primary $ standby)

let () = exit (Cmd.eval' cmd)
