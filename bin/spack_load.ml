(* spack_load: load generator and chaos harness for spack_serve.

   Replays many concurrent clients issuing a mixed solve / install / batch
   workload against a running daemon, at a ladder of load tiers (multiples
   of a base client count).  Chaos mode additionally injects client-side
   misbehaviour — random disconnects, malformed frames, requests abandoned
   mid-solve — which a production daemon must shrug off.  Results (per-tier
   throughput, latency percentiles, shed/error/reconnect counts and the
   daemon's own stats) are emitted as JSON, the BENCH_serve.json artifact. *)

open Cmdliner
module Client = Server.Client
module Protocol = Server.Protocol
module Json = Server.Json

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let default_specs =
  [ "hdf5"; "netcdf-c"; "petsc"; "fftw"; "gromacs"; "lammps"; "zlib"; "cmake" ]

(* Root names matching a daemon started with [--repo N]: same arithmetic as
   Repo_synth.scaled, so every generated name exists over there. *)
let synth_specs n =
  let p = Pkg.Repo_synth.scaled n in
  List.init p.Pkg.Repo_synth.n_apps (Printf.sprintf "app-%03d")
  @ List.init p.Pkg.Repo_synth.n_libs (Printf.sprintf "lib-%03d")

type counters = {
  mutable n_ok : int;
  mutable n_shed : int;
  mutable n_error : int;
  mutable n_reconnects : int;
  mutable n_chaos : int;
  mutable latencies : float list;  (* seconds, successful requests only *)
}

let zero () =
  {
    n_ok = 0;
    n_shed = 0;
    n_error = 0;
    n_reconnects = 0;
    n_chaos = 0;
    latencies = [];
  }

let merge mutex total c =
  Mutex.lock mutex;
  total.n_ok <- total.n_ok + c.n_ok;
  total.n_shed <- total.n_shed + c.n_shed;
  total.n_error <- total.n_error + c.n_error;
  total.n_reconnects <- total.n_reconnects + c.n_reconnects;
  total.n_chaos <- total.n_chaos + c.n_chaos;
  total.latencies <- List.rev_append c.latencies total.latencies;
  Mutex.unlock mutex

(* ---- chaos moves on raw sockets, outside the Client's retry layer ---- *)

let raw_send socket payload ~await_reply =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try
       Unix.connect fd (Unix.ADDR_UNIX socket);
       ignore (Unix.write_substring fd payload 0 (String.length payload));
       if await_reply then begin
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
         try ignore (Unix.read fd (Bytes.create 512) 0 512)
         with Unix.Unix_error _ -> ()
       end
     with Unix.Unix_error _ | Sys_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let chaos_move rng socket spec =
  match Random.State.int rng 3 with
  | 0 ->
    (* malformed frame: the daemon must answer bad_request, not die *)
    raw_send socket "this is not json\n" ~await_reply:true
  | 1 ->
    (* mid-solve kill: enqueue a solve and vanish before the reply *)
    raw_send socket
      (Json.to_string (Protocol.request_to_json ~id:1 (Protocol.solve spec))
      ^ "\n")
      ~await_reply:false
  | _ ->
    (* connect-and-slam *)
    raw_send socket "" ~await_reply:false

(* ---- one client thread -------------------------------------------- *)

type workload = {
  socket : string;
  specs : string array;
  install_frac : float;
  batch_frac : float;
  batch_size : int;
  req_timeout : float option;
  chaos : bool;
}

let run_client wl ~seed ~deadline out mutex =
  let rng = Random.State.make [| seed; 0x10ad |] in
  let c = zero () in
  let pick () = wl.specs.(Random.State.int rng (Array.length wl.specs)) in
  let rec session client =
    if Unix.gettimeofday () >= deadline then Client.close client
    else if wl.chaos && Random.State.float rng 1.0 < 0.05 then begin
      (* random disconnect: drop this connection, continue on a fresh one *)
      c.n_chaos <- c.n_chaos + 1;
      Client.close client;
      chaos_move rng wl.socket (pick ());
      session client (* the client redials lazily on the next request *)
    end
    else begin
      let r = Random.State.float rng 1.0 in
      let req =
        if r < wl.install_frac then
          Protocol.install ?timeout:wl.req_timeout (pick ())
        else if r < wl.install_frac +. wl.batch_frac then
          Protocol.solve_many ?timeout:wl.req_timeout
            (List.init wl.batch_size (fun _ -> pick ()))
        else Protocol.solve ?timeout:wl.req_timeout (pick ())
      in
      let t0 = Unix.gettimeofday () in
      (match Client.request client req with
      | Ok (Protocol.Result _ | Protocol.Results _ | Protocol.Installed _) ->
        c.n_ok <- c.n_ok + 1;
        c.latencies <- (Unix.gettimeofday () -. t0) :: c.latencies
      | Ok (Protocol.Error { kind = Protocol.Overloaded; _ }) ->
        c.n_shed <- c.n_shed + 1
      | Ok _ -> c.n_error <- c.n_error + 1
      | Error _ -> c.n_error <- c.n_error + 1);
      session client
    end
  in
  (match Client.connect ~retries:3 ~backoff:0.02 ~recv_timeout:10.0 wl.socket with
  | Error _ -> c.n_error <- c.n_error + 1
  | Ok client ->
    session client;
    c.n_reconnects <- c.n_reconnects + Client.reconnects client);
  merge mutex out c

(* ------------------------------------------------------------------ *)
(* Tiers and reporting                                                 *)
(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let daemon_stats socket =
  match Client.connect ~retries:2 socket with
  | Error _ -> Json.Null
  | Ok c ->
    let r =
      match Client.request c Protocol.Stats with
      | Ok (Protocol.Stats_reply j) -> j
      | _ -> Json.Null
    in
    Client.close c;
    r

let run_tier wl ~mult ~clients ~duration ~seed =
  let n = clients * mult in
  let total = zero () in
  let mutex = Mutex.create () in
  let deadline = Unix.gettimeofday () +. duration in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () -> run_client wl ~seed:(seed + (mult * 1000) + i) ~deadline total mutex)
          ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list total.latencies in
  Array.sort compare lat;
  let ms x = Float.round (x *. 1e6) /. 1e3 in
  let requests = total.n_ok + total.n_shed + total.n_error in
  Printf.printf
    "spack_load: x%-2d %3d clients  %5d req  %5d ok  %4d shed  %3d err  %4d \
     reconn  p50 %.1fms  p99 %.1fms\n%!"
    mult n requests total.n_ok total.n_shed total.n_error total.n_reconnects
    (ms (percentile lat 0.50))
    (ms (percentile lat 0.99));
  Json.Obj
    [
      ("load", Json.Int mult);
      ("clients", Json.Int n);
      ("duration_s", Json.Float elapsed);
      ("requests", Json.Int requests);
      ("ok", Json.Int total.n_ok);
      ("shed", Json.Int total.n_shed);
      ("errors", Json.Int total.n_error);
      ("reconnects", Json.Int total.n_reconnects);
      ("chaos_events", Json.Int total.n_chaos);
      ( "shed_rate",
        Json.Float
          (if requests = 0 then 0.
           else float_of_int total.n_shed /. float_of_int requests) );
      ( "throughput_rps",
        Json.Float
          (if elapsed > 0. then float_of_int total.n_ok /. elapsed else 0.) );
      ("p50_ms", Json.Float (ms (percentile lat 0.50)));
      ("p95_ms", Json.Float (ms (percentile lat 0.95)));
      ("p99_ms", Json.Float (ms (percentile lat 0.99)));
      ("daemon", daemon_stats wl.socket);
    ]

let parse_tiers s =
  String.split_on_char ',' s
  |> List.filter_map (fun x ->
         match int_of_string_opt (String.trim x) with
         | Some n when n > 0 -> Some n
         | _ -> None)

let run socket clients duration tiers chaos specs synth install_frac batch_frac
    batch_size req_timeout seed json_path =
  let specs =
    match (specs, synth) with
    | Some s, _ ->
      Array.of_list
        (List.filter (fun x -> x <> "") (String.split_on_char ',' s))
    | None, Some n -> Array.of_list (synth_specs n)
    | None, None -> Array.of_list default_specs
  in
  if Array.length specs = 0 then begin
    Printf.eprintf "spack_load: empty spec pool\n";
    exit 2
  end;
  let tiers =
    match parse_tiers tiers with [] -> [ 1; 2; 10 ] | ts -> ts
  in
  let wl =
    {
      socket;
      specs;
      install_frac;
      batch_frac;
      batch_size = max 2 batch_size;
      req_timeout = (if req_timeout > 0. then Some req_timeout else None);
      chaos;
    }
  in
  (* fail fast when no daemon is listening *)
  (match Client.connect ~retries:0 socket with
  | Error m ->
    Printf.eprintf "spack_load: cannot connect: %s\n" m;
    exit 2
  | Ok c -> Client.close c);
  let results =
    List.map (fun mult -> run_tier wl ~mult ~clients ~duration ~seed) tiers
  in
  let report =
    Json.Obj
      [
        ("bench", Json.Str "serve");
        ("chaos", Json.Bool chaos);
        ("base_clients", Json.Int clients);
        ("tier_duration_s", Json.Float duration);
        ("spec_pool", Json.Int (Array.length specs));
        ("tiers", Json.List results);
      ]
  in
  (match json_path with
  | Some p ->
    let oc = open_out p in
    output_string oc (Json.to_string report);
    output_char oc '\n';
    close_out oc;
    Printf.printf "spack_load: wrote %s\n%!" p
  | None -> print_endline (Json.to_string report));
  0

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let socket =
  Arg.(
    value
    & opt string "spack_serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket to load.")

let clients =
  Arg.(
    value & opt int 20
    & info [ "clients" ] ~docv:"N"
        ~doc:"Base concurrent client count (the 1x tier).")

let duration =
  Arg.(
    value & opt float 5.
    & info [ "duration" ] ~docv:"SECS" ~doc:"Seconds per load tier.")

let tiers =
  Arg.(
    value & opt string "1,2,10"
    & info [ "tiers" ] ~docv:"M1,M2,.."
        ~doc:"Load multipliers to run, each for --duration seconds.")

let chaos =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:
          "Inject client misbehaviour: random disconnects, malformed \
           frames, requests abandoned mid-solve.")

let specs =
  Arg.(
    value
    & opt (some string) None
    & info [ "specs" ] ~docv:"S1,S2,.."
        ~doc:"Comma-separated spec pool (default: common HPC packages).")

let synth =
  Arg.(
    value
    & opt (some int) None
    & info [ "synth" ] ~docv:"N"
        ~doc:
          "Generate the spec pool for a daemon running --repo N (synthetic \
           repository root names).")

let install_frac =
  Arg.(
    value & opt float 0.1
    & info [ "install-frac" ] ~docv:"F" ~doc:"Fraction of install requests.")

let batch_frac =
  Arg.(
    value & opt float 0.1
    & info [ "batch-frac" ] ~docv:"F"
        ~doc:"Fraction of solve_many batch requests.")

let batch_size =
  Arg.(
    value & opt int 3
    & info [ "batch-size" ] ~docv:"K" ~doc:"Roots per batch request.")

let req_timeout =
  Arg.(
    value & opt float 0.
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:"Client-side per-request deadline sent to the daemon (0 = none).")

let seed =
  Arg.(
    value & opt int 7
    & info [ "seed" ] ~docv:"N" ~doc:"Deterministic workload seed.")

let json_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Write the JSON report here (default: stdout).")

let cmd =
  let doc = "generate load (and chaos) against a running spack_serve" in
  let man =
    [
      `S Manpage.s_examples;
      `P "Bench a daemon at 1x/2x/10x with chaos:";
      `Pre
        "  spack_serve --socket /tmp/s.sock --repo 300 &\n\
        \  spack_load --socket /tmp/s.sock --synth 300 --chaos --json \
         BENCH_serve.json";
    ]
  in
  Cmd.v
    (Cmd.info "spack_load" ~doc ~man)
    Term.(
      const run $ socket $ clients $ duration $ tiers $ chaos $ specs $ synth
      $ install_frac $ batch_frac $ batch_size $ req_timeout $ seed $ json_path)

let () = exit (Cmd.eval' cmd)
