(* spack_solve: concretize specs against the bundled repository, in the
   style of `spack spec` / `spack solve`. *)

open Cmdliner

let pick_repo = function
  | "core" -> Pkg.Repo_core.repo
  | s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled n)
    | _ ->
      Printf.eprintf "unknown repo %S (use 'core' or a package count)\n" s;
      exit 2)

let print_phases (p : Concretize.Concretizer.phases) =
  Printf.printf
    "Phases: setup %.3fs, load %.3fs, ground %.3fs, solve %.3fs (total %.3fs)\n"
    p.Concretize.Concretizer.setup_time p.Concretize.Concretizer.load_time
    p.Concretize.Concretizer.ground_time p.Concretize.Concretizer.solve_time
    (Concretize.Concretizer.total p)

(* Render one concretization result; returns the exit code. *)
let print_result repo show_stats validate spec_text result =
  match result with
  | Concretize.Concretizer.Interrupted { info; phases; n_facts; n_possible } ->
    Format.printf "INTERRUPTED: %a@." Asp.Budget.pp_info info;
    if show_stats then begin
      Printf.printf "Facts: %d, possible dependencies: %d\n" n_facts n_possible;
      print_phases phases
    end;
    3
  | Concretize.Concretizer.Unsatisfiable { phases; n_facts; n_possible; reasons } ->
    Printf.printf "UNSATISFIABLE: no valid configuration of %s exists\n" spec_text;
    List.iter (Printf.printf "  possible cause: %s\n") reasons;
    if show_stats then begin
      Printf.printf "Facts: %d, possible dependencies: %d\n" n_facts n_possible;
      print_phases phases
    end;
    1
  | Concretize.Concretizer.Concrete s ->
        Format.printf "%a@." Specs.Spec.pp_concrete s.Concretize.Concretizer.spec;
        (match s.Concretize.Concretizer.quality with
        | `Optimal -> ()
        | `Degraded _ ->
          print_endline
            "note: budget expired mid-optimization; this configuration is \
             valid but may be suboptimal");
        if validate then begin
          match Concretize.Validate.check ~repo s.Concretize.Concretizer.spec with
          | [] -> print_endline "validated: ok"
          | vs ->
            List.iter
              (fun v -> Format.printf "VIOLATION %a@." Concretize.Validate.pp_violation v)
              vs
        end;
        if s.Concretize.Concretizer.reused <> [] then begin
          Printf.printf "\n%d installed package(s) reused, %d to build\n"
            (List.length s.Concretize.Concretizer.reused)
            (List.length s.Concretize.Concretizer.built);
          List.iter
            (fun (p, h) -> Printf.printf "  [%s]  %s\n" (String.sub h 0 8) p)
            s.Concretize.Concretizer.reused
        end;
        if s.Concretize.Concretizer.verified then
          print_endline "verified: independent model check passed";
        if show_stats then begin
          Printf.printf "Facts: %d, possible dependencies: %d, logic program: %d lines\n"
            s.Concretize.Concretizer.n_facts s.Concretize.Concretizer.n_possible
            Concretize.Logic_program.line_count;
          let g = s.Concretize.Concretizer.ground_stats in
          Printf.printf "Ground: %d atoms, %d rules\n" g.Asp.Grounder.possible_atoms
            g.Asp.Grounder.ground_rules;
          let st = s.Concretize.Concretizer.sat_stats in
          Printf.printf "Search: %d conflicts, %d decisions, %d restarts\n"
            st.Asp.Sat.conflicts st.Asp.Sat.decisions st.Asp.Sat.restarts;
          Printf.printf "Optimization vector (priority, value):";
          List.iter (fun (p, v) -> Printf.printf " (%d,%d)" p v)
            (List.filter (fun (_, v) -> v <> 0) s.Concretize.Concretizer.costs);
          print_newline ();
          print_phases s.Concretize.Concretizer.phases
        end;
        0

let solve_one repo config installed cancel attempts show_stats greedy validate
    explain ?pool ?racers spec_text =
  if greedy then begin
    match Concretize.Greedy.concretize_spec ~repo spec_text with
    | Concretize.Greedy.Ok c ->
      Format.printf "%a@." Specs.Spec.pp_concrete c;
      0
    | Concretize.Greedy.Error e ->
      Printf.eprintf "Error: %s\n" e.Concretize.Greedy.message;
      (match e.Concretize.Greedy.hint with
      | Some h -> Printf.eprintf "Hint: %s\n" h
      | None -> ());
      1
  end
  else
    match Specs.Spec_parser.parse spec_text with
    | exception Specs.Spec_parser.Error e ->
      Printf.eprintf "Error: invalid spec: %s\n"
        (Specs.Spec_parser.error_to_string e);
      2
    | root -> (
      match
        Concretize.Concretizer.solve_escalating ~attempts ~config ?installed
          ?cancel ?pool ?racers ~explain ~repo [ root ]
      with
      | exception Concretize.Facts.Unknown_package p ->
        Printf.eprintf "Error: unknown package %s\n" p;
        2
      | exception Asp.Solver_error.Error e ->
        Format.eprintf "Error: %a@." Asp.Solver_error.pp e;
        2
      | result -> print_result repo show_stats validate spec_text result)

(* --jobs N with several specs: concretize the batch across the pool, then
   print in input order. *)
let solve_batch repo config installed cancel attempts show_stats validate
    explain pool specs =
  let roots =
    List.map
      (fun s ->
        match Specs.Spec_parser.parse s with
        | root -> [ root ]
        | exception Specs.Spec_parser.Error e ->
          Printf.eprintf "Error: invalid spec: %s\n"
            (Specs.Spec_parser.error_to_string e);
          exit 2)
      specs
  in
  match
    Concretize.Concretizer.solve_many ~pool ~attempts ~config ?installed
      ?cancel ~explain ~repo roots
  with
  | exception Concretize.Facts.Unknown_package p ->
    Printf.eprintf "Error: unknown package %s\n" p;
    2
  | exception Asp.Solver_error.Error e ->
    Format.eprintf "Error: %a@." Asp.Solver_error.pp e;
    2
  | results ->
    List.fold_left2
      (fun rc spec result ->
        max rc (print_result repo show_stats validate spec result))
      0 specs results

let run_multishot repo config installed ?pool ?racers specs =
  let roots =
    List.map
      (fun s ->
        match Specs.Spec_parser.parse s with
        | root -> root
        | exception Specs.Spec_parser.Error e ->
          Printf.eprintf "Error: invalid spec: %s\n"
            (Specs.Spec_parser.error_to_string e);
          exit 2)
      specs
  in
  let ms =
    Concretize.Multishot.solve_stack ~config ?installed ?pool ?racers ~repo
      roots
  in
  List.iter
    (fun (sh : Concretize.Multishot.shot) ->
      match sh.Concretize.Multishot.shot_result with
      | Concretize.Concretizer.Concrete s ->
        Printf.printf "%-24s -> %s  (%d reused, %d built)
"
          sh.Concretize.Multishot.shot_root
          (Specs.Spec.concrete_node_to_string
             (Specs.Spec.concrete_root s.Concretize.Concretizer.spec))
          (List.length s.Concretize.Concretizer.reused)
          (List.length s.Concretize.Concretizer.built)
      | Concretize.Concretizer.Unsatisfiable _ ->
        Printf.printf "%-24s -> UNSATISFIABLE
" sh.Concretize.Multishot.shot_root
      | Concretize.Concretizer.Interrupted { info; _ } ->
        Format.printf "%-24s -> INTERRUPTED (%a)@."
          sh.Concretize.Multishot.shot_root Asp.Budget.pp_info info)
    ms.Concretize.Multishot.shots;
  Printf.printf "
%d specs installed in %.2fs" (Pkg.Database.size ms.Concretize.Multishot.db)
    ms.Concretize.Multishot.total_time;
  (match ms.Concretize.Multishot.distinct_configs with
  | [] -> print_endline "; every package has a single configuration"
  | dups ->
    Printf.printf "; %d package(s) duplicated: %s
" (List.length dups)
      (String.concat ", " (List.map fst dups)));
  exit 0

(* --connect: be a client of a running spack_serve instead of solving
   locally.  Results print through the same renderer, prefixed with the
   daemon's cache verdict.  A comma-separated socket list is a failover
   chain (primary first, standbys after): transient failures and
   read-only refusals rotate to the next endpoint. *)
let run_client socks remote_stats remote_shutdown remote_install
    remote_promote show_stats validate repo_name specs =
  let endpoints =
    String.split_on_char ',' socks |> List.filter (fun s -> s <> "")
  in
  match Server.Client.connect_many endpoints with
  | Error m ->
    Printf.eprintf "Error: cannot connect: %s\n" m;
    2
  | Ok client ->
    let one rc spec_text =
      let req =
        if remote_install then Server.Protocol.install spec_text
        else Server.Protocol.solve spec_text
      in
      match Server.Client.call client req with
      | Error m ->
        Printf.eprintf "Error: %s\n" m;
        max rc 2
      | Ok (Server.Protocol.Installed { root; hashes; total }) ->
        Printf.printf "installed %s: %d new record(s), %d total\n" root
          (List.length hashes) total;
        rc
      | Ok (Server.Protocol.Result { cache; result }) ->
        Printf.printf "cache %s: %s\n"
          (Server.Protocol.cache_status_name cache)
          spec_text;
        max rc
          (print_result (pick_repo repo_name) show_stats validate spec_text
             result)
      | Ok (Server.Protocol.Error { kind; message }) ->
        (match kind with
        | Server.Protocol.Overloaded ->
          Printf.eprintf "Error: server overloaded: %s\n" message
        | _ -> Printf.eprintf "Error: %s\n" message);
        max rc 2
      | Ok _ ->
        Printf.eprintf "Error: unexpected reply\n";
        max rc 2
    in
    let rc =
      if remote_stats then begin
        match Server.Client.request client Server.Protocol.Stats with
        | Ok (Server.Protocol.Stats_reply j) ->
          print_endline (Server.Json.to_string j);
          0
        | Ok _ ->
          Printf.eprintf "Error: unexpected reply\n";
          2
        | Error m ->
          Printf.eprintf "Error: %s\n" m;
          2
      end
      else if remote_promote then begin
        match Server.Client.request client Server.Protocol.Promote with
        | Ok (Server.Protocol.Promoted { epoch }) ->
          Printf.printf "promoted: now primary in epoch %d\n" epoch;
          0
        | Ok (Server.Protocol.Error { message; _ }) ->
          Printf.eprintf "Error: %s\n" message;
          2
        | Ok _ ->
          Printf.eprintf "Error: unexpected reply\n";
          2
        | Error m ->
          Printf.eprintf "Error: %s\n" m;
          2
      end
      else if remote_shutdown then begin
        match Server.Client.request client Server.Protocol.Shutdown with
        | Ok Server.Protocol.Bye ->
          print_endline "server shut down";
          0
        | Ok _ ->
          Printf.eprintf "Error: unexpected reply\n";
          2
        | Error m ->
          Printf.eprintf "Error: %s\n" m;
          2
      end
      else if specs = [] then begin
        Printf.eprintf "Error: no specs given\n";
        2
      end
      else List.fold_left one 0 specs
    in
    Server.Client.close client;
    rc

let run repo_name preset specs show_stats greedy multishot validate reuse_roots
    cache_size timeout retries jobs explain no_verify connect remote_stats
    remote_shutdown remote_install remote_promote =
  if connect <> "" then begin
    (* the client layer ignores SIGPIPE (it needs EPIPE as an exception),
       so a reader that hung up — `spack_solve ... | head` — surfaces here
       as Sys_error instead of a silent SIGPIPE death; exit like one.  The
       buffered tail is flushed *before* exit: once a flush has failed the
       channel is poisoned and the at_exit flushes would raise out of
       [exit], so that case skips them with [_exit]. *)
    let rc =
      try
        run_client connect remote_stats remote_shutdown remote_install
          remote_promote show_stats validate repo_name specs
      with Sys_error m when m = "Broken pipe" -> 141
    in
    match flush stdout with
    | () -> exit rc
    | exception Sys_error _ -> Unix._exit (if rc = 0 then 141 else rc)
  end;
  if specs = [] then begin
    Printf.eprintf "Error: no specs given\n";
    exit 2
  end;
  let repo = pick_repo repo_name in
  let preset =
    match Asp.Config.preset_of_name preset with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown preset %s\n" preset;
      exit 2
  in
  let limits =
    {
      Asp.Budget.no_limits with
      Asp.Budget.wall = (if timeout > 0. then Some timeout else None);
    }
  in
  let config = Asp.Config.make ~preset ~limits ~verify:(not no_verify) () in
  (* first ^C cancels the solve cooperatively; a second one kills *)
  let tok = Asp.Budget.token () in
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle
       (fun _ ->
         if Asp.Budget.is_cancelled tok then exit 130;
         Asp.Budget.cancel tok));
  let installed =
    match reuse_roots with
    | [] -> None
    | roots ->
      let db = Pkg.Buildcache_gen.quick ~repo ~roots cache_size in
      Printf.printf "Populated a synthetic buildcache with %d installed specs\n\n"
        (Pkg.Database.size db);
      Some db
  in
  let with_jobs_pool f =
    if jobs <= 1 then f None
    else
      Asp.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))
  in
  with_jobs_pool (fun pool ->
      if multishot then
        run_multishot repo config installed ?pool ?racers:(if jobs > 1 then Some jobs else None) specs;
      let rc =
        match (pool, specs) with
        | Some p, _ :: _ :: _ when not greedy ->
          (* several specs: parallelize across the batch *)
          solve_batch repo config installed (Some tok) (retries + 1) show_stats
            validate explain p specs
        | _ ->
          (* single spec (or greedy): portfolio-race each solve if jobs > 1 *)
          List.fold_left
            (fun rc spec ->
              max rc
                (solve_one repo config installed (Some tok) (retries + 1)
                   show_stats greedy validate explain ?pool
                   ?racers:(if jobs > 1 then Some jobs else None) spec))
            0 specs
      in
      exit rc)

let specs =
  Arg.(value & pos_all string [] & info [] ~docv:"SPEC" ~doc:"Abstract specs to concretize.")

let connect =
  Arg.(value & opt string "" & info [ "connect" ] ~docv:"SOCKS"
         ~doc:"Solve through a running spack_serve daemon instead of locally; each result is prefixed with the daemon's cache verdict (hit or miss). A comma-separated socket list is a failover chain (primary first, hot standbys after): requests rotate to the next endpoint when the active one dies or answers read-only.")

let remote_stats =
  Arg.(value & flag & info [ "remote-stats" ]
         ~doc:"With --connect: print the daemon's cache/scheduler/server counters as JSON and exit.")

let remote_shutdown =
  Arg.(value & flag & info [ "remote-shutdown" ]
         ~doc:"With --connect: ask the daemon to shut down and exit.")

let remote_install =
  Arg.(value & flag & info [ "remote-install" ]
         ~doc:"With --connect: concretize each spec and record the resulting DAG in the daemon's installed database (write-ahead journaled).")

let remote_promote =
  Arg.(value & flag & info [ "remote-promote" ]
         ~doc:"With --connect: promote a hot-standby follower to primary (it stops following, bumps the replication epoch to fence the old primary, and starts accepting installs) and exit.")

let repo_name =
  Arg.(value & opt string "core" & info [ "repo" ] ~docv:"REPO"
         ~doc:"Repository: 'core' (bundled HPC packages) or an integer for a synthetic repository of roughly that many packages.")

let preset =
  Arg.(value & opt string "tweety" & info [ "preset" ] ~docv:"PRESET"
         ~doc:"clingo-style solver preset (tweety|trendy|handy|frumpy|jumpy|crafty).")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print solver phases and statistics.")

let greedy =
  Arg.(value & flag & info [ "greedy" ] ~doc:"Use the original greedy concretizer instead of the ASP solver.")

let multishot =
  Arg.(value & flag & info [ "multishot" ]
         ~doc:"Concretize the specs one at a time, reusing earlier results (divide and conquer).")

let validate =
  Arg.(value & flag & info [ "validate" ]
         ~doc:"Audit the result against the repository (the validity checklist of Section III-C.1).")

let reuse_roots =
  Arg.(value & opt (list string) [] & info [ "reuse" ] ~docv:"ROOTS"
         ~doc:"Enable reuse against a synthetic buildcache populated from these comma-separated root packages.")

let cache_size =
  Arg.(value & opt int 500 & info [ "cache-size" ] ~docv:"N"
         ~doc:"Approximate number of installed specs in the synthetic buildcache.")

let timeout =
  Arg.(value & opt float 0. & info [ "timeout" ] ~docv:"SECS"
         ~doc:"Wall-clock budget per solve in seconds (0 = none). An expired budget yields a valid but possibly suboptimal spec, or INTERRUPTED when no model was found in time.")

let retries =
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
         ~doc:"On an interrupted solve, retry up to N times with doubled limits and a reseeded search.")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Solve on N domains: a single spec races N diverse solver configurations (portfolio), several specs are concretized in parallel across the batch, and multishot races each shot's solve.")

let explain =
  Arg.(value & flag & info [ "explain" ]
         ~doc:"On an unsatisfiable solve, extract a provenance-mapped minimal unsat core naming the conflicting package recipes and request constraints (slower than the default syntactic diagnosis).")

let no_verify =
  Arg.(value & flag & info [ "no-verify" ]
         ~doc:"Skip the independent re-verification of the winning model (stable-model, support and cost checks run by default).")

let cmd =
  let doc = "concretize package specs with the ASP-based dependency solver" in
  let man =
    [
      `S Manpage.s_examples;
      `P "Concretize HDF5 with full statistics:";
      `Pre "  spack_solve --stats hdf5";
      `P "The paper's conditional-dependency example (Section V-B.1):";
      `Pre "  spack_solve 'hpctoolkit ^mpich'\n  spack_solve --greedy 'hpctoolkit ^mpich'";
      `P "Reuse against a synthetic buildcache (Section VI):";
      `Pre "  spack_solve --reuse hdf5,cmake --stats hdf5";
    ]
  in
  Cmd.v (Cmd.info "spack_solve" ~doc ~man)
    Term.(
      const run $ repo_name $ preset $ specs $ stats $ greedy $ multishot $ validate
      $ reuse_roots $ cache_size $ timeout $ retries $ jobs $ explain
      $ no_verify $ connect $ remote_stats $ remote_shutdown $ remote_install
      $ remote_promote)

(* Safety net for the hung-up-reader case: once a flush has failed with
   EPIPE the channel buffer is poisoned, so the at_exit flushes (stdlib's
   and Format's) would re-raise out of [exit] — skip them with [_exit]. *)
let () =
  let rc =
    match Cmd.eval cmd with
    | rc -> rc
    | exception Sys_error m when m = "Broken pipe" -> 141
  in
  match flush stdout with
  | () -> exit rc
  | exception Sys_error _ -> Unix._exit (if rc = 0 then 141 else rc)
