(* spack_serve: the concretization daemon.  Listens on a Unix domain socket,
   answers newline-delimited JSON requests (solve / solve_many / install /
   stats / shutdown), shards connections across supervised worker domains,
   caches solves content-addressed, journals installs write-ahead and keeps
   the installed database persistent across runs (including crashes: startup
   replays the journal).  `spack_solve --connect SOCK` is the matching
   client; `spack_load` is the load generator. *)

open Cmdliner

let pick_repo = function
  | "core" -> Pkg.Repo_core.repo
  | s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled n)
    | _ ->
      Printf.eprintf "unknown repo %S (use 'core' or a package count)\n" s;
      exit 2)

(* SPACK_SERVE_CRASH=after-intent|after-save|after-commit makes the next
   install die with _exit(42) at that point of the write-ahead protocol.
   Used by the kill -9 recovery and failover drills in scripts/ci.sh;
   meaningless in production. *)
let crash_of_env () =
  match Sys.getenv_opt "SPACK_SERVE_CRASH" with
  | Some "after-intent" ->
    Some (Server.State.After_intent, fun () -> Unix._exit 42)
  | Some "after-save" -> Some (Server.State.After_save, fun () -> Unix._exit 42)
  | Some "after-commit" ->
    Some (Server.State.After_commit, fun () -> Unix._exit 42)
  | Some other ->
    Printf.eprintf "spack_serve: ignoring SPACK_SERVE_CRASH=%S\n%!" other;
    None
  | None -> None

let run socket repo_name preset db_path journal_arg journal_max_bytes follow
    repl_ack cache_dir cache_mem workers jobs max_pending timeout client_rate
    client_burst drain_grace no_verify =
  let repo = pick_repo repo_name in
  let repl_ack =
    match Server.Replica.ack_mode_of_string repl_ack with
    | Some m -> m
    | None ->
      Printf.eprintf "unknown --repl-ack %S (use none|async|sync)\n" repl_ack;
      exit 2
  in
  let preset =
    match Asp.Config.preset_of_name preset with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown preset %s\n" preset;
      exit 2
  in
  let solver = Asp.Config.make ~preset ~verify:(not no_verify) () in
  let journal_path =
    match (journal_arg, db_path) with
    | Some "", _ | None, None -> None
    | Some p, _ -> Some p
    | None, Some db -> Some (db ^ ".journal")
  in
  if follow <> None && journal_path = None then begin
    Printf.eprintf
      "Error: --follow needs a journal (give --db or --journal): follower \
       acks promise durability\n";
    exit 2
  end;
  let db, replayed =
    match
      Server.State.recover ?db_path ?journal_path ()
    with
    | { db0; replayed; uncommitted; truncated; rotated } ->
      Option.iter
        (fun p ->
          if Sys.file_exists p || replayed > 0 then
            Printf.printf "spack_serve: loaded %d installed record(s) from %s\n%!"
              (Pkg.Database.size db0) p)
        db_path;
      if replayed > 0 then
        Printf.printf
          "spack_serve: recovered %d journaled install(s) (%d uncommitted)\n%!"
          replayed uncommitted;
      if truncated then
        Printf.printf "spack_serve: dropped a torn journal tail\n%!";
      if rotated then
        Printf.printf "spack_serve: rotated a stale-format journal aside\n%!";
      (db0, replayed)
    | exception Failure m ->
      Printf.eprintf "Error: %s\n" m;
      exit 2
  in
  let cache = Server.Cache.create ~mem_capacity:cache_mem ?dir:cache_dir () in
  let jobs = if jobs > 0 then jobs else Asp.Pool.default_size () in
  let cfg =
    {
      Server.Daemon.socket_path = socket;
      repo;
      solver;
      db;
      db_path;
      journal_path;
      journal_max_bytes;
      follow;
      repl_ack;
      cache;
      workers;
      jobs;
      max_pending;
      timeout = (if timeout > 0. then Some timeout else None);
      client_rate;
      client_burst;
      drain_grace;
      wedge_timeout = 10.0;
      crash = crash_of_env ();
    }
  in
  Server.Daemon.serve ~signals:true ~replayed
    ~on_ready:(fun () ->
      Printf.printf
        "spack_serve: listening on %s (%d worker(s), %d solver domain(s))\n%!"
        socket (max 1 workers) jobs)
    cfg;
  print_endline "spack_serve: shutdown complete";
  0

let socket =
  Arg.(
    value
    & opt string "spack_serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path to listen on.")

let repo_name =
  Arg.(
    value & opt string "core"
    & info [ "repo" ] ~docv:"REPO"
        ~doc:
          "Repository: 'core' (bundled HPC packages) or an integer for a \
           synthetic repository of roughly that many packages.")

let preset =
  Arg.(
    value & opt string "tweety"
    & info [ "preset" ] ~docv:"PRESET"
        ~doc:
          "clingo-style solver preset \
           (tweety|trendy|handy|frumpy|jumpy|crafty).")

let db_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"PATH"
        ~doc:
          "Installed database file: loaded (and journal-recovered) at \
           startup when present, saved after every install.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Write-ahead install journal (default: the --db path plus \
           '.journal'; an empty string disables journaling).")

let journal_max_bytes =
  Arg.(
    value & opt int 0
    & info [ "journal-max-bytes" ] ~docv:"N"
        ~doc:
          "Compact the install journal (checkpoint against the saved \
           database, preserving sequence positions) once it outgrows N \
           bytes (0 = never).")

let follow =
  Arg.(
    value
    & opt (some string) None
    & info [ "follow" ] ~docv:"SOCKET"
        ~doc:
          "Run as a hot-standby follower of the primary daemon at SOCKET: \
           stream its install journal into local state, serve solves \
           read-only, refuse installs until a 'promote' request flips this \
           daemon to primary (fencing the old epoch).")

let repl_ack =
  Arg.(
    value & opt string "async"
    & info [ "repl-ack" ] ~docv:"MODE"
        ~doc:
          "Replication durability of the client-visible install ack: \
           'none' (replication off), 'async' (ack after the local commit \
           fsync; followers trail), 'sync' (ack only after a follower \
           fsynced the record too — a primary kill -9 loses nothing \
           acked).")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist solve results on disk under DIR (one file per \
           content-addressed key); without it the cache is memory-only.")

let cache_mem =
  Arg.(
    value & opt int 256
    & info [ "cache-mem" ] ~docv:"N"
        ~doc:"In-memory solve-cache capacity (LRU entries).")

let workers =
  Arg.(
    value & opt int 2
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Supervised connection-handling worker domains; a crashed worker \
           is restarted without disturbing the others.")

let jobs =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Solver domains solving concurrently (0 = all cores but one).")

let max_pending =
  Arg.(
    value & opt int 8
    & info [ "max-pending" ] ~docv:"N"
        ~doc:
          "Distinct solves in flight before new requests are shed with a \
           typed 'overloaded' reply.")

let timeout =
  Arg.(
    value & opt float 0.
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock deadline per request, measured from arrival — queue \
           time counts (0 = none).")

let client_rate =
  Arg.(
    value & opt float 0.
    & info [ "client-rate" ] ~docv:"R"
        ~doc:
          "Per-client sustained admission rate, solve roots per second, \
           enforced by a token bucket (0 = off).")

let client_burst =
  Arg.(
    value & opt float 8.
    & info [ "client-burst" ] ~docv:"B"
        ~doc:"Per-client token-bucket capacity (burst size).")

let drain_grace =
  Arg.(
    value & opt float 5.
    & info [ "drain-grace" ] ~docv:"SECS"
        ~doc:
          "Seconds granted to in-flight work when draining (shutdown \
           request or SIGTERM) before the stop is forced.")

let no_verify =
  Arg.(
    value & flag
    & info [ "no-verify" ]
        ~doc:"Skip independent re-verification of winning models.")

let cmd =
  let doc = "serve concretization requests over a Unix domain socket" in
  let man =
    [
      `S Manpage.s_examples;
      `P "Start a daemon and solve against it:";
      `Pre
        "  spack_serve --socket /tmp/spack.sock &\n\
        \  spack_solve --connect /tmp/spack.sock hdf5";
      `P "Persistent, crash-safe state across restarts:";
      `Pre "  spack_serve --db installed.db --cache-dir ./solve-cache";
      `P
        "SIGTERM drains gracefully: stop accepting, finish in-flight work, \
         persist, exit 0.  A second SIGTERM forces an immediate stop.";
    ]
  in
  Cmd.v
    (Cmd.info "spack_serve" ~doc ~man)
    Term.(
      const run $ socket $ repo_name $ preset $ db_path $ journal_arg
      $ journal_max_bytes $ follow $ repl_ack $ cache_dir $ cache_mem
      $ workers $ jobs $ max_pending $ timeout $ client_rate $ client_burst
      $ drain_grace $ no_verify)

let () = exit (Cmd.eval' cmd)
