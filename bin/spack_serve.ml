(* spack_serve: the concretization daemon.  Listens on a Unix domain socket,
   answers newline-delimited JSON requests (solve / solve_many / install /
   stats / shutdown), caches solves content-addressed and keeps the installed
   database persistent across runs.  `spack_solve --connect SOCK` is the
   matching client. *)

open Cmdliner

let pick_repo = function
  | "core" -> Pkg.Repo_core.repo
  | s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled n)
    | _ ->
      Printf.eprintf "unknown repo %S (use 'core' or a package count)\n" s;
      exit 2)

let run socket repo_name preset db_path cache_dir cache_mem jobs max_pending
    timeout no_verify =
  let repo = pick_repo repo_name in
  let preset =
    match Asp.Config.preset_of_name preset with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown preset %s\n" preset;
      exit 2
  in
  let solver = Asp.Config.make ~preset ~verify:(not no_verify) () in
  let db =
    match db_path with
    | None -> Pkg.Database.create ()
    | Some p when Sys.file_exists p -> (
      match Pkg.Database.load p with
      | Ok db ->
        Printf.printf "spack_serve: loaded %d installed record(s) from %s\n%!"
          (Pkg.Database.size db) p;
        db
      | Error e ->
        Printf.eprintf "Error: %s: %s\n" p (Pkg.Database.load_error_to_string e);
        exit 2)
    | Some _ -> Pkg.Database.create ()
  in
  let cache = Server.Cache.create ~mem_capacity:cache_mem ?dir:cache_dir () in
  let jobs = if jobs > 0 then jobs else Asp.Pool.default_size () in
  let cfg =
    {
      Server.Daemon.socket_path = socket;
      repo;
      solver;
      db;
      db_path;
      cache;
      jobs;
      max_pending;
      timeout = (if timeout > 0. then Some timeout else None);
    }
  in
  Server.Daemon.serve
    ~on_ready:(fun () ->
      Printf.printf "spack_serve: listening on %s (%d worker domain(s))\n%!"
        socket jobs)
    cfg;
  print_endline "spack_serve: shutdown complete";
  0

let socket =
  Arg.(
    value
    & opt string "spack_serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path to listen on.")

let repo_name =
  Arg.(
    value & opt string "core"
    & info [ "repo" ] ~docv:"REPO"
        ~doc:
          "Repository: 'core' (bundled HPC packages) or an integer for a \
           synthetic repository of roughly that many packages.")

let preset =
  Arg.(
    value & opt string "tweety"
    & info [ "preset" ] ~docv:"PRESET"
        ~doc:
          "clingo-style solver preset \
           (tweety|trendy|handy|frumpy|jumpy|crafty).")

let db_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"PATH"
        ~doc:
          "Installed database file: loaded at startup when present, saved \
           after every install.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist solve results on disk under DIR (one file per \
           content-addressed key); without it the cache is memory-only.")

let cache_mem =
  Arg.(
    value & opt int 256
    & info [ "cache-mem" ] ~docv:"N"
        ~doc:"In-memory solve-cache capacity (LRU entries).")

let jobs =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains solving concurrently (0 = all cores but one).")

let max_pending =
  Arg.(
    value & opt int 8
    & info [ "max-pending" ] ~docv:"N"
        ~doc:
          "Distinct solves in flight before new requests are shed with a \
           typed 'overloaded' reply.")

let timeout =
  Arg.(
    value & opt float 0.
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock deadline per request, measured from arrival (0 = \
           none).")

let no_verify =
  Arg.(
    value & flag
    & info [ "no-verify" ]
        ~doc:"Skip independent re-verification of winning models.")

let cmd =
  let doc = "serve concretization requests over a Unix domain socket" in
  let man =
    [
      `S Manpage.s_examples;
      `P "Start a daemon and solve against it:";
      `Pre
        "  spack_serve --socket /tmp/spack.sock &\n\
        \  spack_solve --connect /tmp/spack.sock hdf5";
      `P "Persistent state across restarts:";
      `Pre "  spack_serve --db installed.db --cache-dir ./solve-cache";
    ]
  in
  Cmd.v
    (Cmd.info "spack_serve" ~doc ~man)
    Term.(
      const run $ socket $ repo_name $ preset $ db_path $ cache_dir $ cache_mem
      $ jobs $ max_pending $ timeout $ no_verify)

let () = exit (Cmd.eval' cmd)
