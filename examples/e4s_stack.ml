(* Concretizing an E4S-style software stack (Fig. 1, §VII-C).

   E4S deploys ~100 core products plus ~500 required dependencies.  This
   example concretizes every root of the bundled repository's E4S subset,
   reports DAG sizes and solve times, and then concretizes the whole stack
   as one unified multi-root solve.

   Run with:  dune exec examples/e4s_stack.exe  *)

let repo = Pkg.Repo_core.repo

let () =
  let roots = Pkg.Repo_core.e4s_roots in
  Printf.printf "E4S-style roots: %d packages\n\n" (List.length roots);
  Printf.printf "%-20s %9s %7s %9s %9s\n" "root" "poss.deps" "nodes" "ground(s)" "solve(s)";
  let total_time = ref 0.0 in
  List.iter
    (fun root ->
      match Concretize.Concretizer.solve_spec ~repo root with
      | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
      | Concretize.Concretizer.Unsatisfiable _ ->
        Printf.printf "%-20s UNSAT\n" root
      | Concretize.Concretizer.Concrete s ->
        let p = s.Concretize.Concretizer.phases in
        total_time := !total_time +. Concretize.Concretizer.total p;
        Printf.printf "%-20s %9d %7d %9.3f %9.3f\n" root
          s.Concretize.Concretizer.n_possible
          (List.length (Specs.Spec.concrete_nodes s.Concretize.Concretizer.spec))
          p.Concretize.Concretizer.ground_time p.Concretize.Concretizer.solve_time)
    roots;
  Printf.printf "\ntotal: %.1fs for %d solves\n" !total_time (List.length roots);

  (* one unified environment solve: all roots share one DAG, like a Spack
     environment with unified concretization *)
  print_endline "\nUnified stack solve (all roots in one DAG):";
  let abstracts = List.map Specs.Spec_parser.parse roots in
  match Concretize.Concretizer.solve ~repo abstracts with
  | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
  | Concretize.Concretizer.Unsatisfiable _ -> print_endline "UNSAT"
  | Concretize.Concretizer.Concrete s ->
    let nodes = Specs.Spec.concrete_nodes s.Concretize.Concretizer.spec in
    let p = s.Concretize.Concretizer.phases in
    Printf.printf "  %d packages concretized together in %.2fs (ground %.2fs, solve %.2fs)\n"
      (List.length nodes)
      (Concretize.Concretizer.total p)
      p.Concretize.Concretizer.ground_time p.Concretize.Concretizer.solve_time;
    (* every MPI-dependent package agreed on a single MPI implementation *)
    let mpi =
      List.find_opt
        (fun (n : Specs.Spec.concrete_node) ->
          List.mem n.Specs.Spec.name (Pkg.Repo.providers repo "mpi"))
        nodes
    in
    (match mpi with
    | Some n -> Printf.printf "  unified MPI provider: %s\n" n.Specs.Spec.name
    | None -> ())
