(* A site deployment workflow: configuration preferences, a multi-shot
   software-stack build, and independent validation.

   This combines the three inputs of §III-C (command line, package DSL,
   configuration preferences) with the reuse machinery of §VI and the
   divide-and-conquer mode hinted at in §VII-C.

   Run with:  dune exec examples/site_deployment.exe  *)

let repo = Pkg.Repo_core.repo

(* The site's packages.yaml-style configuration: prefer the LTS toolchain,
   openmpi over mpich, HDF5 1.12 over 1.13, and szip-enabled HDF5. *)
let site_prefs =
  {
    Concretize.Preferences.packages =
      [
        ( "hdf5",
          {
            Concretize.Preferences.pref_version = Some (Specs.Vrange.of_string "1.12");
            pref_variants = [ ("szip", "true") ];
          } );
      ];
    providers = [ ("mpi", [ "openmpi" ]) ];
    compilers = None;
  }

let () =
  print_endline "== single solve under site preferences ==";
  (match Concretize.Concretizer.solve_spec ~prefs:site_prefs ~repo "hdf5" with
  | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
  | Concretize.Concretizer.Unsatisfiable _ -> print_endline "UNSAT"
  | Concretize.Concretizer.Concrete s ->
    let root = Specs.Spec.concrete_root s.Concretize.Concretizer.spec in
    Printf.printf "hdf5 -> %s\n" (Specs.Spec.concrete_node_to_string root);
    Printf.printf "  (1.12 preferred over 1.13, szip on, openmpi instead of mpich)\n");

  print_endline "\n== multi-shot deployment of a small stack ==";
  let stack = [ "hdf5"; "netcdf-c"; "h5utils"; "fftw"; "gromacs" ] in
  let ms =
    Concretize.Multishot.solve_stack ~prefs:site_prefs ~repo
      (List.map Specs.Spec_parser.parse stack)
  in
  List.iter
    (fun (sh : Concretize.Multishot.shot) ->
      match sh.Concretize.Multishot.shot_result with
      | Concretize.Concretizer.Concrete s ->
        Printf.printf "  %-12s reused %2d, built %2d\n" sh.Concretize.Multishot.shot_root
          (List.length s.Concretize.Concretizer.reused)
          (List.length s.Concretize.Concretizer.built)
      | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
      | Concretize.Concretizer.Unsatisfiable _ ->
        Printf.printf "  %-12s UNSAT\n" sh.Concretize.Multishot.shot_root)
    ms.Concretize.Multishot.shots;
  Printf.printf "stack of %d installed specs built in %.2fs\n"
    (Pkg.Database.size ms.Concretize.Multishot.db)
    ms.Concretize.Multishot.total_time;

  print_endline "\n== independent validation of every installed sub-DAG ==";
  let all_ok = ref true in
  List.iter
    (fun (sh : Concretize.Multishot.shot) ->
      match sh.Concretize.Multishot.shot_result with
      | Concretize.Concretizer.Concrete s ->
        let violations =
          Concretize.Validate.check ~repo s.Concretize.Concretizer.spec
        in
        if violations <> [] then begin
          all_ok := false;
          List.iter
            (fun v ->
              Format.printf "  %s: %a@." sh.Concretize.Multishot.shot_root
                Concretize.Validate.pp_violation v)
            violations
        end
      | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
      | Concretize.Concretizer.Unsatisfiable _ -> ())
    ms.Concretize.Multishot.shots;
  if !all_ok then print_endline "  every concretized DAG passes the §III-C.1 checklist"
