(* Reusing already-built packages (Section VI, Figs. 4 and 6).

   The old concretizer reused installed packages only on *exact hash match*
   (Fig. 4): any configuration drift meant rebuilding everything.  The ASP
   encoding instead lets the solver pick an installed hash for any node and
   minimizes the number of builds between the two optimization buckets
   (Fig. 5) — so most of an installed graph is reused even when the request
   doesn't match exactly (Fig. 6).

   Run with:  dune exec examples/reuse_demo.exe  *)

let repo = Pkg.Repo_core.repo

let () =
  (* populate a buildcache the way an HPC site would: several compilers,
     targets and OSes, with configuration jitter *)
  let db = Pkg.Database.create () in
  ignore
    (Pkg.Buildcache_gen.populate ~repo ~combos:Pkg.Buildcache_gen.default_combos
       ~roots:[ "hdf5"; "cmake"; "zlib"; "openmpi" ]
       db
      : Pkg.Buildcache_gen.stats);
  Printf.printf "buildcache: %d installed specs\n\n" (Pkg.Database.size db);

  let request = "hdf5+szip" in
  Printf.printf "request: %s (no cached build has +szip)\n\n" request;

  (* --- Fig. 6a: hash-based reuse --- *)
  print_endline "--- hash-based reuse (old concretizer, Fig. 4/6a) ---";
  (match Concretize.Greedy.concretize_spec ~repo request with
  | Concretize.Greedy.Error e -> Printf.printf "greedy failed: %s\n" e.Concretize.Greedy.message
  | Concretize.Greedy.Ok c ->
    let nodes = Specs.Spec.concrete_nodes c in
    let hits =
      List.filter
        (fun (n : Specs.Spec.concrete_node) ->
          Pkg.Database.find db (Specs.Spec.node_hash c n.Specs.Spec.name) <> None)
        nodes
    in
    Printf.printf "%d/%d exact hash hits -> %d packages must be installed from source\n"
      (List.length hits) (List.length nodes)
      (List.length nodes - List.length hits));

  (* --- Fig. 6b: solving for reuse --- *)
  print_endline "\n--- solver-based reuse (Fig. 6b) ---";
  match Concretize.Concretizer.solve_spec ~repo ~installed:db request with
  | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
  | Concretize.Concretizer.Unsatisfiable _ -> print_endline "UNSAT (unexpected)"
  | Concretize.Concretizer.Concrete s ->
    let reused = s.Concretize.Concretizer.reused and built = s.Concretize.Concretizer.built in
    Printf.printf "%d installed packages reused, only %d to build:\n" (List.length reused)
      (List.length built);
    List.iter (fun (p, h) -> Printf.printf "  reuse  [%s] %s\n" (String.sub h 0 8) p) reused;
    List.iter (fun p -> Printf.printf "  build           %s\n" p) built;
    print_newline ();
    Format.printf "%a@." Specs.Spec.pp_concrete s.Concretize.Concretizer.spec
