(* Virtual packages and provider specialization (§III-B, §V-B.3).

   MPI, BLAS and LAPACK are *virtual*: several packages provide them.  The
   solver picks exactly one provider per needed virtual, preferring the
   configured order, and can impose constraints on whichever provider it
   picks — berkeleygw+openmp forces openblas+openmp, but only when openblas
   is the chosen LAPACK provider.

   Run with:  dune exec examples/virtual_providers.exe  *)

let repo = Pkg.Repo_core.repo

let solve spec =
  match Concretize.Concretizer.solve_spec ~repo spec with
  | Concretize.Concretizer.Concrete s -> s.Concretize.Concretizer.spec
  | Concretize.Concretizer.Interrupted _ -> failwith ("INTERRUPTED: " ^ spec)
  | Concretize.Concretizer.Unsatisfiable _ -> failwith ("UNSAT: " ^ spec)

let provider_of spec_dag virt =
  List.find_opt
    (fun p -> Specs.Spec.Node_map.mem p spec_dag.Specs.Spec.nodes)
    (Pkg.Repo.providers repo virt)

let () =
  Printf.printf "mpi providers    : %s\n" (String.concat ", " (Pkg.Repo.providers repo "mpi"));
  Printf.printf "lapack providers : %s\n\n" (String.concat ", " (Pkg.Repo.providers repo "lapack"));

  (* default: the preferred provider (mpich) is chosen *)
  let dag = solve "hdf5" in
  Printf.printf "hdf5            -> mpi = %s\n" (Option.get (provider_of dag "mpi"));

  (* the user can pick a provider with ^; its constraints propagate *)
  let dag = solve "hdf5 ^openmpi@4.1.1" in
  Printf.printf "hdf5 ^openmpi   -> mpi = %s @%s\n"
    (Option.get (provider_of dag "mpi"))
    (Specs.Version.to_string
       (Specs.Spec.Node_map.find "openmpi" dag.Specs.Spec.nodes).Specs.Spec.version);

  (* a conflict on one provider makes the solver pick another: mvapich2
     cannot build on aarch64 *)
  let dag = solve "hdf5 target=thunderx2 %gcc@11.2.0" in
  Printf.printf "hdf5 on aarch64 -> mpi = %s (mvapich2 conflicts with aarch64)\n"
    (Option.get (provider_of dag "mpi"));

  (* §V-B.3: constraints on the chosen provider of a virtual *)
  print_newline ();
  let show_openblas spec =
    let dag = solve spec in
    let ob = Specs.Spec.Node_map.find "openblas" dag.Specs.Spec.nodes in
    Printf.printf "%-22s -> openblas openmp=%s\n" spec
      (List.assoc "openmp" ob.Specs.Spec.variants)
  in
  show_openblas "berkeleygw+openmp";
  show_openblas "berkeleygw~openmp"
