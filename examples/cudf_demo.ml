(* CUDF demo: the Debian upgrade problem on the Spack ASP engine.

   A hand-written eight-stanza universe exercises the interesting CUDF
   features — version-constrained depends, a virtual feature with two
   rival providers, conflicts, an installed state — and one request is
   solved under both user-objective criterion stacks, which provably
   pick different final states.

   Run with:  dune exec examples/cudf_demo.exe  *)

let universe =
  {|# a tiny Debian-like universe
package: editor
version: 1
depends: libtext >= 1
conflicts: editor
installed: true

package: editor
version: 2
depends: libtext >= 2, mta
conflicts: editor

package: libtext
version: 1
conflicts: libtext
installed: true

package: libtext
version: 2
conflicts: libtext

package: postfix
version: 1
provides: mta
conflicts: mta, sendmail

package: sendmail
version: 1
provides: mta
conflicts: mta, postfix
installed: true

package: games
version: 1
conflicts: games
installed: true

package: games
version: 2
depends: libtext = 2
conflicts: games

request: upgrade-editor
install: editor
|}

let show stack doc =
  Printf.printf "--- stack: %s ---\n" (Cudf.Criteria.name stack);
  match Cudf.Solver.solve ~stack doc with
  | Cudf.Solver.Solution s ->
    List.iter
      (fun (n, v) -> Printf.printf "  %s = %d\n" n v)
      s.Cudf.Solver.state;
    List.iter
      (fun pv -> Format.printf "  %a@." (Cudf.Criteria.pp_cost stack) pv)
      s.Cudf.Solver.costs;
    Printf.printf "  optimal: %b, verified: %b\n"
      (s.Cudf.Solver.quality = `Optimal)
      s.Cudf.Solver.verified
  | Cudf.Solver.Unsatisfiable { reasons; _ } ->
    print_endline "  UNSATISFIABLE";
    List.iter (Printf.printf "    %s\n") reasons
  | Cudf.Solver.Interrupted _ -> print_endline "  interrupted"

let () =
  let doc = Cudf.Doc.parse universe in
  Printf.printf "universe: %d stanzas, request %S\n"
    (List.length doc.Cudf.Doc.packages)
    doc.Cudf.Doc.request.Cudf.Doc.req_id;

  (* paranoid (minimize removed, then changed) keeps the installed world:
     editor stays at 1 against the installed libtext 1 and sendmail.
     trendy (minimize outdated, then new, then unmet recommends) moves
     every selected package to its newest version: editor 2 needs
     libtext 2 and an mta — sendmail already provides one. *)
  show Cudf.Criteria.Paranoid doc;
  show Cudf.Criteria.Trendy doc;

  (* an impossible request, diagnosed via the unsat core with stanza
     provenance: postfix and sendmail both provide (and conflict with)
     the virtual feature mta, so they can never be co-installed *)
  let broken =
    {
      doc with
      Cudf.Doc.request =
        {
          Cudf.Doc.req_id = "impossible";
          install =
            [
              { Cudf.Doc.vname = "postfix"; vconstr = None };
              { Cudf.Doc.vname = "sendmail"; vconstr = None };
            ];
          upgrade = [];
          remove = [];
        };
    }
  in
  Printf.printf "--- request: install postfix and sendmail (--explain) ---\n";
  (match Cudf.Solver.solve ~explain:true broken with
  | Cudf.Solver.Unsatisfiable { reasons; _ } ->
    List.iter (Printf.printf "  %s\n") reasons
  | _ -> print_endline "  unexpectedly solvable!");
  ()
