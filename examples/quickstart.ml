(* Quickstart: concretize a spec and inspect the result.

   Run with:  dune exec examples/quickstart.exe  *)

let () =
  let repo = Pkg.Repo_core.repo in

  (* 1. Parse an abstract spec, exactly like `spack install hdf5@1.10:+szip` *)
  let abstract = Specs.Spec_parser.parse "hdf5@1.10:+szip %gcc" in
  Printf.printf "Abstract spec : %s\n" (Specs.Spec.abstract_to_string abstract);

  (* 2. Concretize it: the ASP solver picks versions, variants, compilers,
        targets and providers for the whole dependency DAG, optimally
        w.r.t. the 15 criteria of Table II. *)
  match Concretize.Concretizer.solve ~repo [ abstract ] with
  | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
  | Concretize.Concretizer.Unsatisfiable _ ->
    print_endline "no valid configuration exists"
  | Concretize.Concretizer.Concrete s ->
    print_endline "Concrete spec :";
    Format.printf "  %a@." Specs.Spec.pp_concrete s.Concretize.Concretizer.spec;

    (* 3. Work with the concrete DAG programmatically. *)
    let spec = s.Concretize.Concretizer.spec in
    let root = Specs.Spec.concrete_root spec in
    Printf.printf "\nRoot version  : %s\n" (Specs.Version.to_string root.Specs.Spec.version);
    Printf.printf "Node count    : %d\n" (List.length (Specs.Spec.concrete_nodes spec));
    Printf.printf "szip enabled  : %s\n" (List.assoc "szip" root.Specs.Spec.variants);
    Printf.printf "DAG hash      : %s\n" (Specs.Spec.node_hash spec "hdf5");

    (* 4. Solver diagnostics: the phases the paper measures (§VII). *)
    let p = s.Concretize.Concretizer.phases in
    Printf.printf "\nPhases        : setup %.3fs | ground %.3fs | solve %.3fs\n"
      p.Concretize.Concretizer.setup_time p.Concretize.Concretizer.ground_time
      p.Concretize.Concretizer.solve_time;
    Printf.printf "Problem size  : %d facts, %d possible dependencies\n"
      s.Concretize.Concretizer.n_facts s.Concretize.Concretizer.n_possible
