(* Section V-B.1: conditional dependencies.

   hpctoolkit's MPI support sits behind a non-default variant:

     variant('mpi', default=False)
     depends_on('mpi', when='+mpi')

   The old greedy concretizer fixes variant values before descending into
   dependencies, so `hpctoolkit ^mpich` fails with a hint to overconstrain.
   The ASP solver simply *finds* variant settings under which mpich is part
   of the solution.

   Run with:  dune exec examples/conditional_deps.exe  *)

let repo = Pkg.Repo_core.repo
let spec = "hpctoolkit ^mpich"

let () =
  Printf.printf "spec: %s\n\n" spec;

  print_endline "--- original (greedy) concretizer ---";
  (match Concretize.Greedy.concretize_spec ~repo spec with
  | Concretize.Greedy.Ok c -> Format.printf "%a@." Specs.Spec.pp_concrete c
  | Concretize.Greedy.Error e ->
    Printf.printf "Error: %s\n" e.Concretize.Greedy.message;
    Option.iter (Printf.printf "Hint: %s\n") e.Concretize.Greedy.hint);

  print_endline "\n--- ASP concretizer ---";
  match Concretize.Concretizer.solve_spec ~repo spec with
  | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
  | Concretize.Concretizer.Unsatisfiable _ -> print_endline "UNSAT (unexpected)"
  | Concretize.Concretizer.Concrete s ->
    let spec = s.Concretize.Concretizer.spec in
    Format.printf "%a@." Specs.Spec.pp_concrete spec;
    let mpich = Specs.Spec.Node_map.mem "mpich" spec.Specs.Spec.nodes in
    Printf.printf "\nmpich in the solution: %b — no overconstraining needed.\n" mpich;
    (* which variant did the solver flip to make that happen? *)
    Specs.Spec.Node_map.iter
      (fun name (n : Specs.Spec.concrete_node) ->
        match Pkg.Repo.find repo name with
        | None -> ()
        | Some p ->
          List.iter
            (fun (v : Pkg.Package.variant_decl) ->
              let chosen = List.assoc v.Pkg.Package.var_name n.Specs.Spec.variants in
              if chosen <> v.Pkg.Package.var_default then
                Printf.printf "solver flipped: %s %s=%s (default %s)\n" name
                  v.Pkg.Package.var_name chosen v.Pkg.Package.var_default)
            p.Pkg.Package.variants)
      spec.Specs.Spec.nodes
