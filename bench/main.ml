(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (plus the illustrative figures), printing the same rows/series
   the paper reports.

   Usage:
     dune exec bench/main.exe                 # all experiments
     dune exec bench/main.exe -- fig7d fig6   # a subset
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks
     dune exec bench/main.exe -- --quick      # reduced sizes (CI-friendly)
     dune exec bench/main.exe -- --json F.json  # also dump per-solve timings
     dune exec bench/main.exe -- --jobs 4       # batch solves across 4 domains

   Absolute times differ from the paper (different machine, OCaml solver vs
   clingo); the reproduction targets are the *shapes*: cluster structure,
   preset ordering, reuse counts, CDF shifts with buildcache size. *)

let quick = ref false
let json_file : string option ref = ref None

(* --e4s-target N: how many installed specs the full-scale fig7e-g
   experiment grows its buildcache to (the paper's E4S cache holds 63,099) *)
let e4s_target = ref 63099

(* Scalar results (factgen p50s, cache sizes, RSS highs) surfaced to the
   JSON dump so CI can assert on them without scraping stdout. *)
let metrics : (string * float) list ref = ref []
let metric k v = metrics := (k, v) :: !metrics

(* --jobs N: concretize each experiment's batch of solves across a domain
   pool ({!Concretize.Concretizer.solve_many}).  [pool] is set once in main
   and shared by every experiment. *)
let jobs = ref 1
let pool : Asp.Pool.t option ref = ref None

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

let repo = Pkg.Repo_core.repo

(* ------------------------------------------------------------------ *)
(* Small statistics helpers                                            *)
(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let print_cdf name times =
  let a = Array.of_list times in
  Array.sort Float.compare a;
  Printf.printf "%-32s n=%-4d" name (Array.length a);
  List.iter
    (fun p -> Printf.printf "  p%02.0f=%8.4fs" (p *. 100.) (percentile a p))
    [ 0.10; 0.25; 0.50; 0.75; 0.90 ];
  if Array.length a > 0 then Printf.printf "  max=%8.4fs" a.(Array.length a - 1);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table I: spec sigils                                                *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I: spec sigils (parser demonstration)";
  Printf.printf "%-46s %s\n" "input" "parsed constraint";
  List.iter
    (fun s ->
      let a = Specs.Spec_parser.parse s in
      Printf.printf "%-46s %s\n" s (Specs.Spec.abstract_to_string a))
    [
      "hdf5%gcc";
      "hdf5@1.10.2";
      "hdf5%gcc@10.3.1";
      "hdf5+mpi";
      "hdf5~mpi";
      "hdf5 mpi=true";
      "hdf5 api=default";
      "hdf5 target=skylake";
      "hdf5@1.10.2 ^zlib%gcc ^cmake target=thunderx2";
    ]

(* ------------------------------------------------------------------ *)
(* Fig. 3: grounding and solving                                       *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "Fig. 3: grounding and solving in ASP";
  let src =
    {|depends_on(a, c).
depends_on(b, d).
depends_on(c, d).
node(D) :- node(P), depends_on(P, D).
1 { node(a); node(b) }.|}
  in
  print_endline "Program:";
  print_endline src;
  let prog = Asp.Parser.parse src in
  let ground, stats = Asp.Grounder.ground prog in
  Printf.printf "\nGround instances (%d atoms, %d rules):\n"
    stats.Asp.Grounder.possible_atoms stats.Asp.Grounder.ground_rules;
  Printf.printf "%s" (Format.asprintf "%a" Asp.Ground.pp ground);
  let models = Asp.Naive.stable_models prog in
  Printf.printf "Stable models (%d):\n" (List.length models);
  List.iter
    (fun m ->
      let nodes =
        List.filter_map
          (fun (a : Asp.Gatom.t) ->
            if a.Asp.Gatom.pred = "node" then Some (Format.asprintf "%a" Asp.Gatom.pp a)
            else None)
          m
      in
      Printf.printf "  { %s }\n" (String.concat " " nodes))
    models

(* ------------------------------------------------------------------ *)
(* Table II: optimization criteria                                     *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table II: optimization criteria (priority order)";
  List.iter (fun (i, name) -> Printf.printf "%4d  %s\n" i name) Concretize.Criteria.names;
  subsection "objective vector of hdf5@1.10.2%gcc@8.5.0 (forces old version + compiler)";
  match Concretize.Concretizer.solve_spec ~repo "hdf5@1.10.2%gcc@8.5.0" with
  | Concretize.Concretizer.Unsatisfiable _ -> print_endline "UNSAT"
  | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
  | Concretize.Concretizer.Concrete s ->
    Printf.printf "%s"
      (Format.asprintf "%a" Concretize.Criteria.pp_costs s.Concretize.Concretizer.costs)

(* ------------------------------------------------------------------ *)
(* Figs. 4-6: reuse                                                    *)
(* ------------------------------------------------------------------ *)

let reuse_cache roots =
  let db = Pkg.Database.create () in
  ignore
    (Pkg.Buildcache_gen.populate ~repo ~combos:Pkg.Buildcache_gen.default_combos
       ~roots db
      : Pkg.Buildcache_gen.stats);
  db

let fig6 () =
  section "Fig. 6: concretization with and without reuse optimization";
  let db = reuse_cache [ "hdf5"; "cmake"; "openmpi"; "zlib" ] in
  Printf.printf "buildcache: %d installed specs\n" (Pkg.Database.size db);
  (* a toolchain/target combination absent from the cache: exact-hash reuse
     gets nothing, while the solver can still mix in installed nodes *)
  let request = "hdf5+szip %gcc@8.5.0 target=skylake" in
  Printf.printf "request: %s\n" request;
  (* 6a: hash-based reuse on the greedy result *)
  (match Concretize.Greedy.concretize_spec ~repo request with
  | Concretize.Greedy.Error e ->
    Printf.printf "greedy failed: %s\n" e.Concretize.Greedy.message
  | Concretize.Greedy.Ok c ->
    let nodes = Specs.Spec.concrete_nodes c in
    let hits =
      List.length
        (List.filter
           (fun (n : Specs.Spec.concrete_node) ->
             Pkg.Database.find db (Specs.Spec.node_hash c n.Specs.Spec.name) <> None)
           nodes)
    in
    Printf.printf "(a) hash-based reuse : %d/%d hits -> %d to install\n" hits
      (List.length nodes)
      (List.length nodes - hits));
  (* 6b: solving for reuse *)
  match Concretize.Concretizer.solve_spec ~repo ~installed:db request with
  | Concretize.Concretizer.Unsatisfiable _ -> print_endline "UNSAT"
  | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
  | Concretize.Concretizer.Concrete s ->
    Printf.printf "(b) solving for reuse: %d reused, %d to build (%s)\n"
      (List.length s.Concretize.Concretizer.reused)
      (List.length s.Concretize.Concretizer.built)
      (String.concat ", " s.Concretize.Concretizer.built)

let fig5 () =
  section "Fig. 5: two-bucket objective vector of a mixed solve";
  let db = reuse_cache [ "zlib"; "cmake" ] in
  match Concretize.Concretizer.solve_spec ~repo ~installed:db "h5utils" with
  | Concretize.Concretizer.Unsatisfiable _ -> print_endline "UNSAT"
  | Concretize.Concretizer.Interrupted _ -> print_endline "INTERRUPTED"
  | Concretize.Concretizer.Concrete s ->
    Printf.printf "%d reused, %d built; objective vector (highest priority first):\n"
      (List.length s.Concretize.Concretizer.reused)
      (List.length s.Concretize.Concretizer.built);
    Printf.printf "%s"
      (Format.asprintf "%a"
         (fun ppf costs ->
           List.iter (fun pv -> Format.fprintf ppf "  %a@." Concretize.Criteria.pp_cost pv) costs)
         s.Concretize.Concretizer.costs)

(* ------------------------------------------------------------------ *)
(* Fig. 7a-c: solve times vs. possible dependencies                    *)
(* ------------------------------------------------------------------ *)

type row = {
  pkg : string;
  possible : int;
  ground_t : float;
  ground_base_t : float;  (* substrate base build inside ground_t (cold) *)
  ground_extend_t : float;  (* substrate extension inside ground_t (warm) *)
  solve_t : float;
  total_t : float;
  wall_t : float;
      (* caller-observed wall-clock: the single solve for jobs=1, the whole
         batch for jobs>1 (same value on every row of that batch) *)
  jobs : int;
  outcome : string;  (* "optimal" | "degraded" | "interrupted" *)
  verified : bool;  (* independent model verification passed *)
  cache : string;  (* "hit" | "miss" (caching on) | "off" (no cache) *)
  peak_rss_mb : float;  (* process high-water RSS when the row was made *)
}

(* Every solve performed by any experiment is recorded here, tagged with the
   experiment currently running, and dumped at exit when --json was given. *)
let current_experiment = ref ""
let recorded_rows : (string * row) list ref = ref []

let solve_rows ?config ?installed ?cache ?substrate ?(repo = repo) names =
  (* With a cache, label each row before its solve: a key already present is
     a [hit] (served without solving), anything else a [miss] that the solve
     below will populate.  Status is computed against the cache state at
     dispatch time, so a warm second pass over the same names reports hits. *)
  let status_of pkg =
    match cache with
    | None -> "off"
    | Some c ->
      let key =
        Concretize.Concretizer.request_key ?config ?installed ~repo
          [ Specs.Spec_parser.parse pkg ]
      in
      if Server.Cache.mem c key then "hit" else "miss"
  in
  let hook = Option.map Server.Cache.hook cache in
  let row_of pkg status wall result =
    match result with
    | Concretize.Concretizer.Concrete s ->
      let p = s.Concretize.Concretizer.phases in
      Some
        {
          pkg;
          possible = s.Concretize.Concretizer.n_possible;
          ground_t = p.Concretize.Concretizer.ground_time;
          ground_base_t = p.Concretize.Concretizer.ground_base_time;
          ground_extend_t = p.Concretize.Concretizer.ground_extend_time;
          solve_t = p.Concretize.Concretizer.solve_time;
          total_t = Concretize.Concretizer.total p;
          wall_t = wall;
          jobs = !jobs;
          outcome =
            (match s.Concretize.Concretizer.quality with
            | `Optimal -> "optimal"
            | `Degraded _ -> "degraded");
          verified = s.Concretize.Concretizer.verified;
          cache = status;
          peak_rss_mb = Rss.peak_mb ();
        }
    | Concretize.Concretizer.Interrupted { phases = p; n_possible; _ } ->
      (* only reachable when a budget is configured; keep the row so
         --json accounts for every attempted solve *)
      Some
        {
          pkg;
          possible = n_possible;
          ground_t = p.Concretize.Concretizer.ground_time;
          ground_base_t = p.Concretize.Concretizer.ground_base_time;
          ground_extend_t = p.Concretize.Concretizer.ground_extend_time;
          solve_t = p.Concretize.Concretizer.solve_time;
          total_t = Concretize.Concretizer.total p;
          wall_t = wall;
          jobs = !jobs;
          outcome = "interrupted";
          verified = false;
          cache = status;
          peak_rss_mb = Rss.peak_mb ();
        }
    | Concretize.Concretizer.Unsatisfiable _ -> None
  in
  let rows =
    match !pool with
    | Some p when !jobs > 1 ->
      (* batch parallelism: every solve of the experiment dispatched across
         the pool at once; the per-batch wall-clock against the sum of
         per-solve totals is the honest speedup number *)
      let statuses = List.map status_of names in
      let t0 = Unix.gettimeofday () in
      let batch =
        Concretize.Concretizer.solve_many ~pool:p ?config ?installed ?cache:hook
          ?substrate ~repo
          (List.map (fun pkg -> [ Specs.Spec_parser.parse pkg ]) names)
      in
      let wall = Unix.gettimeofday () -. t0 in
      let rows =
        List.filter_map Fun.id
          (List.map2
             (fun (pkg, status) r -> row_of pkg status wall r)
             (List.combine names statuses) batch)
      in
      let cpu = List.fold_left (fun a r -> a +. r.total_t) 0. rows in
      Printf.printf "[batch: %d solves on %d domains, wall %.3fs, cpu-sum %.3fs]\n"
        (List.length rows) !jobs wall cpu;
      rows
    | _ ->
      List.filter_map
        (fun pkg ->
          let status = status_of pkg in
          let t0 = Unix.gettimeofday () in
          match
            Concretize.Concretizer.solve_spec ?config ?installed ?cache:hook
              ?substrate ~repo pkg
          with
          | r -> row_of pkg status (Unix.gettimeofday () -. t0) r
          | exception Concretize.Facts.Unknown_package _ -> None)
        names
  in
  if !json_file <> None then
    recorded_rows :=
      List.rev_append (List.map (fun r -> (!current_experiment, r)) rows) !recorded_rows;
  rows

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Per-experiment digests: spread (p50/p99) of full solve times plus the
   process RSS high-water observed across the experiment's rows. *)
let summaries rows =
  let tbl : (string, row list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (exp, r) ->
      match Hashtbl.find_opt tbl exp with
      | Some l -> l := r :: !l
      | None ->
        Hashtbl.add tbl exp (ref [ r ]);
        order := exp :: !order)
    rows;
  List.rev_map
    (fun exp ->
      let rs = !(Hashtbl.find tbl exp) in
      let a = Array.of_list (List.map (fun r -> r.total_t) rs) in
      Array.sort Float.compare a;
      let rss = List.fold_left (fun m r -> Float.max m r.peak_rss_mb) 0. rs in
      (exp, List.length rs, percentile a 0.50, percentile a 0.99, rss))
    !order

let write_json path =
  let oc = open_out path in
  output_string oc "{\n  \"quick\": ";
  output_string oc (if !quick then "true" else "false");
  output_string oc ",\n  \"rows\": [\n";
  let rows = List.rev !recorded_rows in
  List.iteri
    (fun i (exp, r) ->
      Printf.fprintf oc
        "    {\"experiment\": \"%s\", \"pkg\": \"%s\", \"possible\": %d, \
         \"ground_s\": %.6f, \"ground_base_s\": %.6f, \"ground_extend_s\": %.6f, \
         \"substrate\": \"%s\", \"solve_s\": %.6f, \"total_s\": %.6f, \
         \"wall_s\": %.6f, \"jobs\": %d, \"outcome\": \"%s\", \"verified\": %b, \
         \"cache\": \"%s\", \"peak_rss_mb\": %.1f}%s\n"
        (json_escape exp) (json_escape r.pkg) r.possible r.ground_t r.ground_base_t
        r.ground_extend_t
        (if r.ground_base_t > 0. then "cold"
         else if r.ground_extend_t > 0. then "warm"
         else "off")
        r.solve_t r.total_t
        r.wall_t r.jobs (json_escape r.outcome) r.verified (json_escape r.cache)
        r.peak_rss_mb
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ],\n  \"summaries\": [\n";
  let sums = summaries rows in
  List.iteri
    (fun i (exp, n, p50, p99, rss) ->
      Printf.fprintf oc
        "    {\"experiment\": \"%s\", \"n\": %d, \"p50_total_s\": %.6f, \
         \"p99_total_s\": %.6f, \"peak_rss_mb\": %.1f}%s\n"
        (json_escape exp) n p50 p99 rss
        (if i = List.length sums - 1 then "" else ","))
    sums;
  output_string oc "  ],\n  \"metrics\": {\n";
  let ms = List.rev !metrics in
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "    \"%s\": %.6f%s\n" (json_escape k) v
        (if i = List.length ms - 1 then "" else ","))
    ms;
  output_string oc "  },\n";
  Printf.fprintf oc "  \"peak_rss_mb\": %.1f\n}\n" (Rss.peak_mb ());
  close_out oc;
  Printf.printf "wrote %d timing rows to %s\n" (List.length rows) path

let sample names = if !quick then List.filteri (fun i _ -> i mod 4 = 0) names else names

let fig7abc () =
  section "Fig. 7a-c: ground/solve/total times vs. number of possible dependencies";
  let rows = solve_rows (sample (Pkg.Repo.package_names repo)) in
  Printf.printf "%-20s %10s %10s %10s %10s\n" "package" "poss.deps" "ground(s)" "solve(s)"
    "total(s)";
  List.iter
    (fun r ->
      Printf.printf "%-20s %10d %10.3f %10.3f %10.3f\n" r.pkg r.possible r.ground_t
        r.solve_t r.total_t)
    (List.sort (fun a b -> Int.compare a.possible b.possible) rows);
  (* the paper's observation: a bimodal split between packages that can
     reach the MPI hub and those that cannot *)
  let small = List.filter (fun r -> r.possible < 20) rows in
  let large = List.filter (fun r -> r.possible >= 20) rows in
  let avg f l =
    List.fold_left (fun a r -> a +. f r) 0.0 l /. float_of_int (max 1 (List.length l))
  in
  subsection "cluster summary (the paper's bimodal split)";
  Printf.printf
    "cluster A (cannot reach MPI): %3d packages, avg poss.deps %5.1f, avg total %6.3fs\n"
    (List.length small)
    (avg (fun r -> float_of_int r.possible) small)
    (avg (fun r -> r.total_t) small);
  Printf.printf
    "cluster B (can reach MPI)   : %3d packages, avg poss.deps %5.1f, avg total %6.3fs\n"
    (List.length large)
    (avg (fun r -> float_of_int r.possible) large)
    (avg (fun r -> r.total_t) large);
  let amax = List.fold_left (fun acc r -> max acc r.possible) 0 small in
  let bmin = List.fold_left (fun acc r -> min acc r.possible) max_int large in
  Printf.printf "gap between clusters        : %d .. %d possible dependencies\n" amax bmin

(* ------------------------------------------------------------------ *)
(* Fig. 7d: preset comparison (tweety / trendy / handy)                *)
(* ------------------------------------------------------------------ *)

let fig7d () =
  section "Fig. 7d: cumulative distribution of full solve times per preset";
  let names = sample (Pkg.Repo.package_names repo) in
  List.iter
    (fun preset ->
      let config = Asp.Config.make ~preset () in
      let rows = solve_rows ~config names in
      print_cdf (Asp.Config.preset_name preset) (List.map (fun r -> r.total_t) rows))
    [ Asp.Config.Tweety; Asp.Config.Trendy; Asp.Config.Handy ];
  subsection "ground times are preset-independent";
  List.iter
    (fun preset ->
      let config = Asp.Config.make ~preset () in
      let rows = solve_rows ~config names in
      print_cdf
        (Asp.Config.preset_name preset ^ " (ground only)")
        (List.map (fun r -> r.ground_t) rows))
    [ Asp.Config.Tweety; Asp.Config.Trendy; Asp.Config.Handy ];
  (* incremental grounding: solve every package once cold (each first
     request grounds and freezes its name-skeleton base) and then once warm
     with a *different* request over the same names (a harmless extra
     constraint) — the warm pass only extends the frozen bases, so its
     ground cost is the per-request delta, not the full instantiation *)
  subsection "substrate: cold base builds vs warm extensions (same repo/DB)";
  let substrate =
    Concretize.Substrate.create ~capacity:(List.length names) ()
  in
  let saved = !current_experiment in
  current_experiment := saved ^ "-substrate-cold";
  let cold = solve_rows ~substrate names in
  current_experiment := saved ^ "-substrate-warm";
  (* "@0:" is trivially satisfiable and changes no answer, but makes the
     request distinct from the cold one — this measures base reuse across
     different requests, not request-level caching *)
  let warm = solve_rows ~substrate (List.map (fun p -> p ^ "@0:") names) in
  current_experiment := saved;
  let p50 l =
    let a = Array.of_list l in
    Array.sort Float.compare a;
    percentile a 0.50
  in
  let base_p50 = p50 (List.map (fun r -> r.ground_base_t) cold) in
  let extend_p50 = p50 (List.map (fun r -> r.ground_extend_t) warm) in
  Printf.printf
    "cold pass: p50 base build %.4fs (+ extension %.4fs); warm pass: p50 \
     extension %.4fs (%.1fx less grounding)\n"
    base_p50
    (p50 (List.map (fun r -> r.ground_extend_t) cold))
    extend_p50
    (base_p50 /. Float.max 1e-9 extend_p50);
  let c = Concretize.Substrate.counters substrate in
  Printf.printf
    "substrate: %d bases, %d extensions, %d fallbacks\n"
    c.Concretize.Substrate.base_builds c.Concretize.Substrate.extensions
    c.Concretize.Substrate.fallbacks;
  if !quick then begin
    (* quick suite only: run the default preset twice against a shared solve
       cache — the cold pass populates it, the warm pass should be served
       entirely from memory (every row labelled [hit], near-zero wall time) *)
    subsection "warm-cache second pass (content-addressed solve cache)";
    let cache = Server.Cache.create ~mem_capacity:1024 () in
    let config = Asp.Config.make () in
    let saved = !current_experiment in
    current_experiment := saved ^ "-cold";
    let cold = solve_rows ~config ~cache names in
    current_experiment := saved ^ "-warm";
    let warm = solve_rows ~config ~cache names in
    current_experiment := saved;
    let hits l = List.length (List.filter (fun r -> r.cache = "hit") l) in
    (* jobs>1: every row of a batch carries the same whole-batch wall clock,
       so summing would overcount by the batch size *)
    let wall = function
      | r :: _ when !jobs > 1 -> r.wall_t
      | l -> List.fold_left (fun a r -> a +. r.wall_t) 0.0 l
    in
    Printf.printf "cold pass: %d/%d cache hits, wall %.3fs\n" (hits cold)
      (List.length cold) (wall cold);
    Printf.printf "warm pass: %d/%d cache hits, wall %.3fs\n" (hits warm)
      (List.length warm) (wall warm)
  end

(* ------------------------------------------------------------------ *)
(* Fig. 7e-g: reuse with growing buildcaches                           *)
(* ------------------------------------------------------------------ *)

let fig7efg () =
  section "Fig. 7e-g: solve times of E4S roots with increasing buildcache";
  let db = Pkg.Database.create () in
  let variations = if !quick then 2 else 3 in
  ignore
    (Pkg.Buildcache_gen.populate ~variations ~repo
       ~combos:Pkg.Buildcache_gen.default_combos ~roots:Pkg.Repo_core.e4s_roots db
      : Pkg.Buildcache_gen.stats);
  let is_family fam (r : Pkg.Database.record) =
    match Specs.Target.find r.Pkg.Database.target with
    | Some t -> String.equal t.Specs.Target.family fam
    | None -> false
  in
  let slices =
    [
      ("full buildcache", db);
      ("x86_64 only", Pkg.Database.filter db ~f:(is_family "x86_64"));
      ("rhel8 only", Pkg.Database.filter db ~f:(fun r -> r.Pkg.Database.os = "rhel8"));
      ( "x86_64 + rhel8",
        Pkg.Database.filter db ~f:(fun r ->
            is_family "x86_64" r && r.Pkg.Database.os = "rhel8") );
    ]
  in
  let roots =
    if !quick then List.filteri (fun i _ -> i mod 3 = 0) Pkg.Repo_core.e4s_roots
    else Pkg.Repo_core.e4s_roots
  in
  List.iter
    (fun (name, slice) ->
      let label = Printf.sprintf "%s (%d specs)" name (Pkg.Database.size slice) in
      let rows = solve_rows ~installed:slice roots in
      print_cdf label (List.map (fun r -> r.total_t) rows);
      let setup = List.map (fun r -> r.total_t -. r.ground_t -. r.solve_t) rows in
      let solve = List.map (fun r -> r.solve_t) rows in
      let avg l = List.fold_left ( +. ) 0. l /. float_of_int (max 1 (List.length l)) in
      Printf.printf "%-32s      avg setup=%.3fs avg solve=%.3fs\n" "" (avg setup)
        (avg solve))
    slices

(* ------------------------------------------------------------------ *)
(* Fig. 7e-g at full paper scale (E4S buildcache, 63,099 specs)        *)
(* ------------------------------------------------------------------ *)

(* The paper's §VII-C stress test: reuse solves against the real E4S
   buildcache (63,099 specs).  A synthetic repository stands in for E4S;
   [Buildcache_gen.scale_to] grows variation combinations until the cache
   holds [--e4s-target] distinct DAG hashes.  Reuse facts flow through the
   streaming pipeline (no materialized per-spec atom lists), and the four
   paper slices are arena-sharing views of one packed database. *)
let fig7efg_full () =
  let target = if !quick then min 5000 !e4s_target else !e4s_target in
  section
    (Printf.sprintf
       "Fig. 7e-g at full E4S scale: %d-spec buildcache, streamed reuse facts"
       target);
  let sr = Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled 600) in
  let apps =
    List.filter
      (fun p -> String.length p > 3 && String.sub p 0 3 = "app")
      (Pkg.Repo.package_names sr)
  in
  let t0 = Unix.gettimeofday () in
  let db, st =
    Pkg.Buildcache_gen.scale_to
      ~log:(fun m -> Printf.printf "  %s\n%!" m)
      ~repo:sr ~roots:apps target
  in
  let gen_s = Unix.gettimeofday () -. t0 in
  Printf.printf "buildcache: %d specs in %.1fs (%s), peak rss %.0f MB\n%!"
    (Pkg.Database.size db) gen_s
    (Pkg.Buildcache_gen.stats_to_string st)
    (Rss.peak_mb ());
  metric "e4s_specs" (float_of_int (Pkg.Database.size db));
  metric "e4s_gen_s" gen_s;
  metric "e4s_gen_peak_rss_mb" (Rss.peak_mb ());
  (* fact generation, streamed vs materialized, over the full cache: the
     streamed path never builds per-spec statement lists — atoms go
     straight into a ground-atom store sink *)
  let froots = [ Specs.Spec_parser.parse (List.nth apps 0) ] in
  let reps = if !quick then 3 else 5 in
  let time_of f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let p50_of f =
    let a = Array.init reps (fun _ -> time_of f) in
    Array.sort Float.compare a;
    percentile a 0.50
  in
  (* both legs deliver every fact into a ground-atom store — that is what
     the grounder does with them — so the measured difference is exactly
     the intermediate AST statement list the streamed path never builds *)
  let intern_statements store (f : Concretize.Facts.t) =
    List.iter
      (fun st ->
        match st with
        | Asp.Ast.Rule { head = Asp.Ast.Head_atom { pred; args }; body = []; _ } ->
          let rec csts acc = function
            | [] -> Some (List.rev acc)
            | Asp.Ast.Cst t :: rest -> csts (t :: acc) rest
            | _ -> None
          in
          (match csts [] args with
          | Some ts ->
            ignore (Asp.Gatom.Store.intern store (Asp.Gatom.make pred ts))
          | None -> ())
        | _ -> ())
      f.Concretize.Facts.statements
  in
  let mat_p50 =
    p50_of (fun () ->
        let f =
          Concretize.Facts.generate ~installed:db ~reuse_mode:`Materialize
            ~repo:sr froots
        in
        intern_statements (Asp.Gatom.Store.create ()) f)
  in
  let stream_p50 =
    p50_of (fun () ->
        let f =
          Concretize.Facts.generate ~installed:db ~reuse_mode:`Stream ~repo:sr
            froots
        in
        let store = Asp.Gatom.Store.create () in
        intern_statements store f;
        match f.Concretize.Facts.reuse_stream with
        | Some stream ->
          stream (fun ga -> ignore (Asp.Gatom.Store.intern store ga))
        | None -> ())
  in
  Printf.printf
    "factgen over %d specs: materialized p50 %.3fs, streamed p50 %.3fs (%.2fx)\n%!"
    (Pkg.Database.size db) mat_p50 stream_p50
    (mat_p50 /. Float.max 1e-9 stream_p50);
  metric "factgen_materialized_p50_s" mat_p50;
  metric "factgen_streamed_p50_s" stream_p50;
  (* the four paper slices, as views sharing the packed arena *)
  let is_family fam (r : Pkg.Database.record) =
    match Specs.Target.find r.Pkg.Database.target with
    | Some t -> String.equal t.Specs.Target.family fam
    | None -> false
  in
  let slices =
    [
      ("full buildcache", db);
      ("x86_64 only", Pkg.Database.filter db ~f:(is_family "x86_64"));
      ("rhel8 only", Pkg.Database.filter db ~f:(fun r -> r.Pkg.Database.os = "rhel8"));
      ( "x86_64 + rhel8",
        Pkg.Database.filter db ~f:(fun r ->
            is_family "x86_64" r && r.Pkg.Database.os = "rhel8") );
    ]
  in
  (* a handful of E4S-style roots per slice keeps the full run tractable
     while still exercising every slice at full cache size *)
  let n_roots = if !quick then 3 else 6 in
  let roots =
    List.filteri (fun i _ -> i mod (max 1 (List.length apps / n_roots)) = 0) apps
    |> List.filteri (fun i _ -> i < n_roots)
  in
  let saved = !current_experiment in
  List.iter
    (fun (name, slice) ->
      let tag =
        match name with
        | "full buildcache" -> "full"
        | "x86_64 only" -> "x86_64"
        | "rhel8 only" -> "rhel8"
        | _ -> "x86_64-rhel8"
      in
      current_experiment := saved ^ "-" ^ tag;
      let label = Printf.sprintf "%s (%d specs)" name (Pkg.Database.size slice) in
      let rows = solve_rows ~installed:slice ~repo:sr roots in
      print_cdf label (List.map (fun r -> r.total_t) rows);
      Printf.printf "%-32s      peak rss %.0f MB\n%!" ""
        (List.fold_left (fun m r -> Float.max m r.peak_rss_mb) 0. rows))
    slices;
  current_experiment := saved;
  metric "e4s_peak_rss_mb" (Rss.peak_mb ())

(* ------------------------------------------------------------------ *)
(* Fig. 7h: old (greedy) vs. new (ASP) concretizer                     *)
(* ------------------------------------------------------------------ *)

let fig7h () =
  section "Fig. 7h: cumulative distribution, old concretizer vs clingo-style solver";
  let names = sample (Pkg.Repo.package_names repo) in
  let greedy_times =
    List.filter_map
      (fun pkg ->
        let t0 = Unix.gettimeofday () in
        match Concretize.Greedy.concretize_spec ~repo pkg with
        | Concretize.Greedy.Ok _ -> Some (Unix.gettimeofday () -. t0)
        | Concretize.Greedy.Error _ -> None)
      names
  in
  let asp_rows = solve_rows names in
  print_cdf "old concretizer (greedy)" greedy_times;
  print_cdf "ASP solver (tweety)" (List.map (fun r -> r.total_t) asp_rows);
  Printf.printf "\nnote: greedy solved %d/%d packages; the ASP solver solved %d/%d\n"
    (List.length greedy_times) (List.length names) (List.length asp_rows)
    (List.length names)

(* ------------------------------------------------------------------ *)
(* Usability scenarios of §V-B (completeness demonstrations)           *)
(* ------------------------------------------------------------------ *)

let usability () =
  section "Section V-B: usability improvements (greedy vs ASP)";
  let scenarios =
    [
      (repo, "conditional dependency (V-B.1)", "hpctoolkit ^mpich");
      (repo, "conflict handling (V-B.2)", "example target=thunderx2");
      (repo, "provider specialization (V-B.3)", "berkeleygw+openmp");
    ]
  in
  (* III-C.2's bzip2 anecdote needs two dependents with crossing version
     bounds; reconstructed on a minimal repository *)
  let mini =
    Pkg.Repo.make
      [
        Pkg.Package.make "dep" [ Pkg.Package.version "1.0.8"; Pkg.Package.version "1.0.7" ];
        Pkg.Package.make "liba"
          [ Pkg.Package.version "1.0"; Pkg.Package.depends_on "dep@1.0.7:" ];
        Pkg.Package.make "libb"
          [ Pkg.Package.version "1.0"; Pkg.Package.depends_on "dep@:1.0.7" ];
        Pkg.Package.make "app"
          [
            Pkg.Package.version "1.0";
            Pkg.Package.depends_on "liba";
            Pkg.Package.depends_on "libb";
          ];
      ]
  in
  let scenarios = scenarios @ [ (mini, "backtracking versions (III-C.2)", "app") ] in
  Printf.printf "%-36s %-28s %s\n" "scenario" "greedy" "ASP";
  List.iter
    (fun (repo, name, spec) ->
      let greedy =
        match Concretize.Greedy.concretize_spec ~repo spec with
        | Concretize.Greedy.Ok _ -> "solved"
        | Concretize.Greedy.Error _ -> "FAILED (asks user to fix)"
      in
      let asp =
        match Concretize.Concretizer.solve_spec ~repo spec with
        | Concretize.Concretizer.Concrete _ -> "solved"
        | Concretize.Concretizer.Unsatisfiable _ -> "proven unsatisfiable"
        | Concretize.Concretizer.Interrupted _ -> "interrupted"
      in
      Printf.printf "%-36s %-28s %s\n" name greedy asp)
    scenarios

(* ------------------------------------------------------------------ *)
(* Scaling on synthetic repositories (supplementary)                   *)
(* ------------------------------------------------------------------ *)

let scaling () =
  section "Scaling: unified environment solves on synthetic repositories";
  Printf.printf "%-12s %8s %7s %9s %10s %10s %10s %8s\n" "target size" "pkgs" "roots"
    "facts" "ground(s)" "solve(s)" "total(s)" "nodes";
  let sizes = if !quick then [ 100; 300 ] else [ 100; 300; 600; 1200 ] in
  List.iter
    (fun n ->
      let sr = Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled n) in
      (* a whole-stack solve: every application root concretized in one DAG,
         like a large Spack environment *)
      let roots =
        List.filter
          (fun p -> String.length p > 3 && String.sub p 0 3 = "app")
          (Pkg.Repo.package_names sr)
        |> List.map Specs.Spec_parser.parse
      in
      match Concretize.Concretizer.solve ~repo:sr roots with
      | Concretize.Concretizer.Concrete s ->
        let p = s.Concretize.Concretizer.phases in
        Printf.printf "%-12d %8d %7d %9d %10.3f %10.3f %10.3f %8d\n" n
          (Pkg.Repo.size sr) (List.length roots) s.Concretize.Concretizer.n_facts
          p.Concretize.Concretizer.ground_time p.Concretize.Concretizer.solve_time
          (Concretize.Concretizer.total p)
          (List.length (Specs.Spec.concrete_nodes s.Concretize.Concretizer.spec))
      | Concretize.Concretizer.Unsatisfiable _ -> Printf.printf "%-12d UNSAT\n" n
      | Concretize.Concretizer.Interrupted _ -> Printf.printf "%-12d INTERRUPTED\n" n)
    sizes

(* ------------------------------------------------------------------ *)
(* Multi-shot vs unified stack concretization                          *)
(* ------------------------------------------------------------------ *)

let multishot () =
  section "Multi-shot vs unified concretization (the paper's closing remark)";
  let roots = List.map Specs.Spec_parser.parse Pkg.Repo_core.e4s_roots in
  (* unified: one combinatorial solve, globally optimal *)
  (match Concretize.Concretizer.solve ~repo roots with
  | Concretize.Concretizer.Concrete s ->
    let p = s.Concretize.Concretizer.phases in
    Printf.printf
      "unified   : %d roots -> %d nodes in %.2fs (one configuration per package)\n"
      (List.length roots)
      (List.length (Specs.Spec.concrete_nodes s.Concretize.Concretizer.spec))
      (Concretize.Concretizer.total p)
  | Concretize.Concretizer.Unsatisfiable _ -> print_endline "unified: UNSAT"
  | Concretize.Concretizer.Interrupted _ -> print_endline "unified: INTERRUPTED");
  (* multi-shot: divide and conquer, later shots reuse earlier results *)
  let ms = Concretize.Multishot.solve_stack ~repo roots in
  let solved =
    List.length
      (List.filter
         (fun sh ->
           match sh.Concretize.Multishot.shot_result with
           | Concretize.Concretizer.Concrete _ -> true
           | Concretize.Concretizer.Unsatisfiable _
           | Concretize.Concretizer.Interrupted _ -> false)
         ms.Concretize.Multishot.shots)
  in
  Printf.printf "multi-shot: %d/%d roots -> %d installed specs in %.2fs\n" solved
    (List.length roots)
    (Pkg.Database.size ms.Concretize.Multishot.db)
    ms.Concretize.Multishot.total_time;
  (match ms.Concretize.Multishot.distinct_configs with
  | [] -> print_endline "            no duplicated configurations (as good as unified)"
  | dups ->
    Printf.printf
      "            'slightly less optimal': %d package(s) got several configs: %s\n"
      (List.length dups)
      (String.concat ", " (List.map (fun (n, k) -> Printf.sprintf "%s(%d)" n k) dups)));
  (* how the trade-off looks at scale: one big combinatorial solve vs a sum
     of many small reuse solves *)
  subsection "at scale (synthetic repository)";
  let n = if !quick then 300 else 900 in
  let sr = Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled n) in
  let roots =
    List.filter
      (fun p -> String.length p > 3 && String.sub p 0 3 = "app")
      (Pkg.Repo.package_names sr)
    |> List.map Specs.Spec_parser.parse
  in
  (match Concretize.Concretizer.solve ~repo:sr roots with
  | Concretize.Concretizer.Concrete s ->
    Printf.printf "unified   : %d roots, %d packages -> %.2fs\n" (List.length roots)
      (Pkg.Repo.size sr)
      (Concretize.Concretizer.total s.Concretize.Concretizer.phases)
  | Concretize.Concretizer.Unsatisfiable _ -> print_endline "unified: UNSAT"
  | Concretize.Concretizer.Interrupted _ -> print_endline "unified: INTERRUPTED");
  let ms = Concretize.Multishot.solve_stack ~repo:sr roots in
  Printf.printf "multi-shot: %.2fs, %d package(s) with several configs\n"
    ms.Concretize.Multishot.total_time
    (List.length ms.Concretize.Multishot.distinct_configs)

(* ------------------------------------------------------------------ *)
(* Ablation: optimization strategy (bb vs usc,one)                     *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: model-guided (bb) vs core-guided (usc,one) optimization";
  let names = sample (Pkg.Repo.package_names repo) in
  List.iter
    (fun (label, strategy) ->
      let config = Asp.Config.make ~strategy () in
      let rows = solve_rows ~config names in
      print_cdf label (List.map (fun r -> r.total_t) rows))
    [ ("bb (branch-and-bound)", Asp.Config.Bb); ("usc,one (core-guided)", Asp.Config.Usc) ];
  print_endline
    "(the paper selects clingo's unsatisfiable-core-guided strategy usc,one;\n\
    \ the same ordering shows here)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Bechamel micro-benchmarks (hot kernels)";
  let open Bechamel in
  let lp = Concretize.Logic_program.text in
  let facts =
    lazy
      (Concretize.Facts.generate ~repo [ Specs.Spec_parser.parse "hdf5" ])
        .Concretize.Facts.statements
  in
  let full_program = lazy (Asp.Parser.parse lp @ Lazy.force facts) in
  let ground = lazy (fst (Asp.Grounder.ground (Lazy.force full_program))) in
  let tests =
    [
      Test.make ~name:"spec-parse"
        (Staged.stage (fun () ->
             ignore
               (Specs.Spec_parser.parse
                  "hdf5@1.10.2+mpi%gcc@10.3.1 ^zlib@1.2.8: target=skylake")));
      Test.make ~name:"version-compare"
        (Staged.stage (fun () ->
             ignore
               (Specs.Version.compare
                  (Specs.Version.of_string "1.10.2")
                  (Specs.Version.of_string "1.9.30"))));
      Test.make ~name:"lp-parse (load)"
        (Staged.stage (fun () -> ignore (Asp.Parser.parse lp)));
      Test.make ~name:"fact-gen hdf5 (setup)"
        (Staged.stage (fun () ->
             ignore (Concretize.Facts.generate ~repo [ Specs.Spec_parser.parse "hdf5" ])));
      Test.make ~name:"ground hdf5 (ground)"
        (Staged.stage (fun () -> ignore (Asp.Grounder.ground (Lazy.force full_program))));
      Test.make ~name:"solve hdf5 (solve)"
        (Staged.stage (fun () ->
             let t = Asp.Translate.translate (Lazy.force ground) in
             ignore (Asp.Optimize.run t ~on_model:(Asp.Stable.hook t))));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg [ instance ] test
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun t ->
      let results = benchmark t in
      let a = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Printf.printf "%-32s %14.0f ns/run\n" name est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        a)
    tests

(* ------------------------------------------------------------------ *)
(* CUDF: Linux-distro package universes on the same engine             *)
(* ------------------------------------------------------------------ *)

(* Synthetic Debian-like universes (satisfiable by construction) solved
   end-to-end under both user-objective stacks.  Every solve must reach a
   verified proven optimum; p50/p99 of the full pipeline, ground size and
   peak RSS land in the JSON dump per (size, stack). *)
let cudf_bench () =
  section "CUDF: Debian-like package universes on the Spack ASP engine";
  let sizes = if !quick then [ (1000, 3) ] else [ (1000, 5); (10000, 3) ] in
  List.iter
    (fun (n, reps) ->
      List.iter
        (fun stack ->
          let sname = Cudf.Criteria.name stack in
          let tag = Printf.sprintf "cudf-%d-%s" n sname in
          current_experiment := tag;
          let times = ref [] in
          let max_rules = ref 0 in
          for seed = 1 to reps do
            let d = Cudf.Synth.universe ~seed ~n () in
            let t0 = Unix.gettimeofday () in
            match Cudf.Solver.solve ~stack d with
            | Cudf.Solver.Solution s ->
              let wall = Unix.gettimeofday () -. t0 in
              let p = s.Cudf.Solver.phases in
              let g = s.Cudf.Solver.ground_stats in
              if not (s.Cudf.Solver.verified && s.Cudf.Solver.quality = `Optimal)
              then failwith (tag ^ ": solve did not reach a verified optimum");
              times := Cudf.Solver.total p :: !times;
              max_rules := max !max_rules g.Asp.Grounder.ground_rules;
              Printf.printf
                "  %-8s n=%-6d seed=%d  ground %6.2fs  solve %6.2fs  costs %-14s \
                 %d atoms %d rules\n%!"
                sname n seed p.Cudf.Solver.ground_time p.Cudf.Solver.solve_time
                (String.concat ","
                   (List.map
                      (fun (pr, v) -> Printf.sprintf "%d@%d" v pr)
                      s.Cudf.Solver.costs))
                g.Asp.Grounder.possible_atoms g.Asp.Grounder.ground_rules;
              if !json_file <> None then
                recorded_rows :=
                  ( tag,
                    {
                      pkg = Printf.sprintf "synth-%d-%d" n seed;
                      possible = g.Asp.Grounder.possible_atoms;
                      ground_t = p.Cudf.Solver.ground_time;
                      ground_base_t = 0.;
                      ground_extend_t = 0.;
                      solve_t = p.Cudf.Solver.solve_time;
                      total_t = Cudf.Solver.total p;
                      wall_t = wall;
                      jobs = 1;
                      outcome = "optimal";
                      verified = s.Cudf.Solver.verified;
                      cache = "off";
                      peak_rss_mb = Rss.peak_mb ();
                    } )
                  :: !recorded_rows
            | Cudf.Solver.Unsatisfiable _ ->
              failwith (tag ^ ": synthetic universe unexpectedly unsatisfiable")
            | Cudf.Solver.Interrupted _ -> failwith (tag ^ ": interrupted")
          done;
          let a = Array.of_list !times in
          Array.sort Float.compare a;
          metric (Printf.sprintf "%s_p50_s" tag) (percentile a 0.50);
          metric (Printf.sprintf "%s_p99_s" tag) (percentile a 0.99);
          metric (Printf.sprintf "%s_ground_rules" tag) (float_of_int !max_rules);
          Printf.printf "  %-8s n=%-6d p50 %.2fs  p99 %.2fs  peak rss %.0f MB\n"
            sname n (percentile a 0.50) (percentile a 0.99) (Rss.peak_mb ()))
        Cudf.Criteria.all)
    sizes;
  current_experiment := "cudf"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("fig3", fig3);
    ("table2", table2);
    ("fig5", fig5);
    ("fig6", fig6);
    ("usability", usability);
    ("fig7abc", fig7abc);
    ("fig7d", fig7d);
    ("fig7efg", fig7efg);
    ("fig7efg-full", fig7efg_full);
    ("fig7h", fig7h);
    ("scaling", scaling);
    ("cudf", cudf_bench);
    ("multishot", multishot);
    ("ablation", ablation);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse = function
    | [] -> []
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--json" :: path :: rest ->
      json_file := Some path;
      parse rest
    | [ "--json" ] ->
      prerr_endline "--json requires a file argument";
      exit 2
    | "--e4s-target" :: n :: rest -> (
      match int_of_string_opt n with
      | Some k when k >= 1 ->
        e4s_target := k;
        parse rest
      | _ ->
        prerr_endline "--e4s-target requires a positive integer";
        exit 2)
    | [ "--e4s-target" ] ->
      prerr_endline "--e4s-target requires a positive integer";
      exit 2
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some k when k >= 1 ->
        jobs := k;
        parse rest
      | _ ->
        prerr_endline "--jobs requires a positive integer";
        exit 2)
    | [ "--jobs" ] ->
      prerr_endline "--jobs requires a positive integer";
      exit 2
    | a :: rest -> a :: parse rest
  in
  let args = parse args in
  (* the full-scale E4S run only happens when asked for by name: growing a
     63k-spec buildcache is a deliberate stress test, not a default *)
  let to_run =
    match args with
    | [] -> List.filter (( <> ) "fig7efg-full") (List.map fst experiments)
    | names -> names
  in
  let t0 = Unix.gettimeofday () in
  let run_all () =
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f ->
          current_experiment := name;
          f ()
        | None ->
          Printf.eprintf "unknown experiment %s (available: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
      to_run
  in
  if !jobs > 1 then
    Asp.Pool.with_pool ~domains:!jobs (fun p ->
        pool := Some p;
        Fun.protect ~finally:(fun () -> pool := None) run_all)
  else run_all ();
  Printf.printf "\nall experiments completed in %.1fs\n" (Unix.gettimeofday () -. t0);
  match !json_file with Some path -> write_json path | None -> ()
