/* Peak-RSS fallback for platforms without /proc: getrusage(2).
   ru_maxrss is in kilobytes on Linux and most BSDs; macOS reports bytes,
   which the OCaml side normalises heuristically. */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <sys/resource.h>

CAMLprim value bench_ru_maxrss(value unit)
{
  struct rusage ru;
  (void)unit;
  if (getrusage(RUSAGE_SELF, &ru) != 0)
    return Val_long(0);
  return Val_long((long)ru.ru_maxrss);
}
