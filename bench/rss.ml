(* Peak resident-set measurement for the benchmark harness.

   Primary source is [VmHWM] from /proc/self/status (the kernel's
   high-water mark for resident pages, in kB).  On systems without /proc
   the [getrusage] stub supplies [ru_maxrss]; Linux and the BSDs report
   kilobytes there, macOS reports bytes — anything implausibly large for
   a kB reading is treated as bytes. *)

external ru_maxrss : unit -> int = "bench_ru_maxrss"

let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          let rest = String.sub line 6 (String.length line - 6) in
          let digits =
            String.to_seq rest
            |> Seq.filter (fun c -> c >= '0' && c <= '9')
            |> String.of_seq
          in
          int_of_string_opt digits
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let rusage_kb () =
  let v = ru_maxrss () in
  if v <= 0 then None
  else if v > 1 lsl 34 then Some (v / 1024) (* plausibly bytes (macOS) *)
  else Some v

(** Peak resident set of this process so far, in MiB (0. if unreadable). *)
let peak_mb () =
  match vm_hwm_kb () with
  | Some kb -> float_of_int kb /. 1024.
  | None -> (
    match rusage_kb () with
    | Some kb -> float_of_int kb /. 1024.
    | None -> 0.)
